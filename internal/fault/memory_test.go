package fault

import (
	"testing"

	"hybridmem/internal/core"
	"hybridmem/internal/tech"
)

// sinkMemory is an inert terminal for exercising the fault wrapper alone.
type sinkMemory struct {
	loads, stores uint64
}

func (s *sinkMemory) Load(addr, sizeBytes uint64)  { s.loads++ }
func (s *sinkMemory) Store(addr, sizeBytes uint64) { s.stores++ }
func (s *sinkMemory) Modules() []core.LevelStats   { return nil }

// retiringSink additionally implements PageRetirer, recording retirements.
type retiringSink struct {
	sinkMemory
	retired []uint64
}

func (r *retiringSink) RetirePage(start, size uint64) bool {
	r.retired = append(r.retired, start)
	return true
}

// runStream drives a fixed synthetic access pattern through a freshly
// wrapped memory and returns the resulting statistics.
func runStream(cfg Config) Stats {
	m := Wrap(&sinkMemory{}, cfg)
	for i := uint64(0); i < 20000; i++ {
		addr := (i * 64) % (1 << 20)
		if i%3 == 0 {
			m.Store(addr, 64)
		} else {
			m.Load(addr, 64)
		}
	}
	return m.FaultStats()
}

func TestMemorySameSeedIdenticalStats(t *testing.T) {
	cfg := Config{Seed: 99, BitErrorRate: 1e-4, EnduranceWrites: 4000}
	a := runStream(cfg)
	b := runStream(cfg)
	if a != b {
		t.Fatalf("same seed diverged:\n  %+v\n  %+v", a, b)
	}
	if a.Accesses != 20000 {
		t.Fatalf("accesses = %d, want 20000", a.Accesses)
	}
	c := runStream(Config{Seed: 100, BitErrorRate: 1e-4, EnduranceWrites: 4000})
	if a == c {
		t.Fatal("different seeds produced identical statistics (suspicious)")
	}
}

func TestMemoryZeroConfigInjectsNothing(t *testing.T) {
	s := runStream(Config{Seed: 1})
	if s.Corrected != 0 || s.Uncorrected != 0 || s.StuckLines != 0 || s.RetiredPages != 0 {
		t.Fatalf("zero-rate config injected faults: %+v", s)
	}
	if s.Accesses != 20000 {
		t.Fatalf("accesses = %d, want 20000", s.Accesses)
	}
}

func TestMemoryECCCorrectsAtExpectedRate(t *testing.T) {
	// λ = BER * 512 bits = 0.0512 per access; double-bit rate λ²/2 ≈ 0.13%.
	s := runStream(Config{Seed: 7, BitErrorRate: 1e-4})
	frac := float64(s.Corrected) / float64(s.Accesses)
	if frac < 0.03 || frac > 0.07 {
		t.Fatalf("corrected fraction = %.4f, want ~0.05 (stats: %+v)", frac, s)
	}
	if s.Uncorrected == 0 {
		t.Fatal("expected some double-bit uncorrectable errors at this rate")
	}
	if s.Uncorrected >= s.Corrected {
		t.Fatalf("uncorrected (%d) should be far rarer than corrected (%d)",
			s.Uncorrected, s.Corrected)
	}
	if s.RetiredPages == 0 || s.RetiredPages > s.Uncorrected {
		t.Fatalf("retired pages = %d inconsistent with %d uncorrectable errors",
			s.RetiredPages, s.Uncorrected)
	}
}

func TestMemoryWearDrivenRetirementAndRemap(t *testing.T) {
	sink := &retiringSink{}
	m := Wrap(sink, Config{Seed: 3, EnduranceWrites: 10})

	// Hammer one line: the threshold lies in [5, 15), so the line must be
	// stuck after at most 15 writes and retired (second cell) by 30.
	for i := 0; i < 30; i++ {
		m.Store(0x1000, 64)
	}
	s := m.FaultStats()
	if s.StuckLines != 1 {
		t.Fatalf("stuck lines = %d, want 1 after endurance exhaustion", s.StuckLines)
	}
	if s.Uncorrected != 1 || s.RetiredPages != 1 {
		t.Fatalf("wear-out did not retire the page: %+v", s)
	}
	if s.Corrected == 0 {
		t.Fatal("stuck line accesses before wear-out should count ECC corrections")
	}
	if len(sink.retired) != 1 || sink.retired[0] != 0x1000 {
		t.Fatalf("retirer saw %v, want one retirement of page 0x1000", sink.retired)
	}

	// Further traffic to the retired page is served remapped, fault-free.
	before := m.FaultStats()
	m.Load(0x1000, 64)
	m.Store(0x1040, 64)
	after := m.FaultStats()
	if after.Remapped != before.Remapped+2 {
		t.Fatalf("remapped = %d, want %d", after.Remapped, before.Remapped+2)
	}
	if after.Uncorrected != before.Uncorrected || after.RetiredPages != before.RetiredPages {
		t.Fatal("retired page kept faulting after remap")
	}
	// The terminal still sees every access (the page lives elsewhere, but
	// traffic is never dropped).
	if sink.loads != 1 || sink.stores != 31 {
		t.Fatalf("terminal saw loads=%d stores=%d, want 1/31", sink.loads, sink.stores)
	}
}

// vetoingSink refuses every remap, modeling a page that falls outside the
// terminal's partition ranges.
type vetoingSink struct {
	sinkMemory
	asked int
}

func (v *vetoingSink) RetirePage(start, size uint64) bool { v.asked++; return false }

func TestMemoryFailedRemapNotCountedAsRemapped(t *testing.T) {
	sink := &vetoingSink{}
	m := Wrap(sink, Config{Seed: 3, EnduranceWrites: 10})
	for i := 0; i < 30; i++ {
		m.Store(0x1000, 64)
	}
	s := m.FaultStats()
	if s.RetiredPages != 1 || sink.asked != 1 {
		t.Fatalf("retirement not attempted exactly once: %+v, asked=%d", s, sink.asked)
	}
	// Traffic to the retired-without-remap page still hits the original
	// module, so it must not count as remapped — but it also injects no
	// further faults (the page is already maximally degraded).
	m.Load(0x1000, 64)
	after := m.FaultStats()
	if after.Remapped != 0 {
		t.Fatalf("failed remap counted as remapped traffic: %+v", after)
	}
	if after.Uncorrected != s.Uncorrected || after.RetiredPages != 1 {
		t.Fatalf("retired page kept faulting after a failed remap: %+v", after)
	}
}

func TestMemoryThresholdSpread(t *testing.T) {
	m := Wrap(&sinkMemory{}, Config{Seed: 5, EnduranceWrites: 1000})
	lo, hi := false, false
	for line := uint64(0); line < 200; line++ {
		th := m.threshold(line)
		if th < 500 || th >= 1500 {
			t.Fatalf("line %d threshold %d out of [E/2, 3E/2)", line, th)
		}
		if th < 750 {
			lo = true
		}
		if th >= 1250 {
			hi = true
		}
	}
	if !lo || !hi {
		t.Fatal("thresholds show no spread across lines")
	}
}

func TestStatsAddAndRate(t *testing.T) {
	a := Stats{Accesses: 10, Corrected: 2, Uncorrected: 1, StuckLines: 3, RetiredPages: 4, Remapped: 5}
	b := a.Add(a)
	want := Stats{Accesses: 20, Corrected: 4, Uncorrected: 2, StuckLines: 6, RetiredPages: 8, Remapped: 10}
	if b != want {
		t.Fatalf("Add = %+v, want %+v", b, want)
	}
	if got := b.UncorrectedRate(); got != 0.1 {
		t.Fatalf("UncorrectedRate = %g, want 0.1", got)
	}
	if (Stats{}).UncorrectedRate() != 0 {
		t.Fatal("idle UncorrectedRate must be 0")
	}
}

func TestMemorySkipsNonFaultProneAddresses(t *testing.T) {
	pm, err := core.NewPartitionedMemory(
		[]core.AddrRange{{Start: 0, End: 0x10000}},
		"nvm", tech.Tech{Name: "PCM"}, 1<<20,
		"dram", tech.Tech{Name: "DRAM"}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	m := Wrap(pm, Config{Seed: 3, EnduranceWrites: 10})

	// Hammering a DRAM-side line breeds no wear faults: only the NVM side
	// of a hybrid terminal is subject to the device model.
	for i := 0; i < 100; i++ {
		m.Store(0x20000, 64)
	}
	if s := m.FaultStats(); s.StuckLines != 0 || s.RetiredPages != 0 {
		t.Fatalf("DRAM-side writes wore out: %+v", s)
	}

	// The same hammering on an NVM-side line wears out, retires, and —
	// because the page lies in a partition range — remaps into DRAM, after
	// which further traffic counts as remapped and the address is no
	// longer fault-prone.
	for i := 0; i < 30; i++ {
		m.Store(0x1000, 64)
	}
	s := m.FaultStats()
	if s.StuckLines != 1 || s.RetiredPages != 1 {
		t.Fatalf("NVM-side wear-out did not retire: %+v", s)
	}
	m.Load(0x1000, 64)
	if after := m.FaultStats(); after.Remapped != s.Remapped+1 {
		t.Fatalf("remapped NVM page traffic not counted: %+v", after)
	}
	if pm.FaultProne(0x1000) {
		t.Fatal("retired address still reports fault-prone")
	}
}

func TestPartitionedMemoryRetirePageClipsToRanges(t *testing.T) {
	// The NVM range starts mid-page: partition ranges follow workload
	// region bases and are not page-aligned in general.
	pm, err := core.NewPartitionedMemory(
		[]core.AddrRange{{Start: 0x1800, End: 1 << 20}},
		"nvm", tech.Tech{Name: "PCM"}, 1<<20,
		"dram", tech.Tech{Name: "DRAM"}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Page [0x1000, 0x2000) half-overlaps the range: the remap must take
	// effect for exactly the overlapping 0x800 bytes.
	if !pm.RetirePage(0x1000, 4096) {
		t.Fatal("page straddling the range start was rejected")
	}
	mods := pm.Modules()
	if mods[0].Capacity != 1<<20-0x800 || mods[1].Capacity != 1<<20+0x800 {
		t.Fatalf("clipped remap moved wrong capacity: nvm=%d dram=%d",
			mods[0].Capacity, mods[1].Capacity)
	}
	// The remapped bytes now land on the DRAM side; healthy NVM bytes stay.
	pm.Load(0x1900, 64)
	pm.Load(0x2800, 64)
	mods = pm.Modules()
	if mods[1].Stats.Loads != 1 || mods[0].Stats.Loads != 1 {
		t.Fatalf("loads: nvm=%d dram=%d, want 1/1", mods[0].Stats.Loads, mods[1].Stats.Loads)
	}
	// Retiring the same page again, or a page missing every range, fails.
	if pm.RetirePage(0x1000, 4096) {
		t.Fatal("double retirement of a clipped page accepted")
	}
	if pm.RetirePage(0, 4096) {
		t.Fatal("page outside every range accepted")
	}
}

func TestPartitionedMemoryRetirePageAccounting(t *testing.T) {
	pm, err := core.NewPartitionedMemory(
		[]core.AddrRange{{Start: 0, End: 1 << 20}},
		"nvm", tech.Tech{Name: "PCM"}, 1<<20,
		"dram", tech.Tech{Name: "DRAM"}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	total := func() uint64 {
		var sum uint64
		for _, mod := range pm.Modules() {
			sum += mod.Capacity
		}
		return sum
	}
	before := total()

	if !pm.RetirePage(0x3000, 4096) {
		t.Fatal("in-range retirement rejected")
	}
	if pm.RetirePage(0x3000, 4096) {
		t.Fatal("double retirement accepted")
	}
	if pm.RetirePage(1<<21, 4096) {
		t.Fatal("out-of-range retirement accepted")
	}
	if pm.RetirePage(0x2000, 0x3000) {
		t.Fatal("retirement strictly enclosing an already-retired page accepted")
	}
	if pm.RetiredPages() != 1 {
		t.Fatalf("RetiredPages = %d, want 1", pm.RetiredPages())
	}
	if after := total(); after != before {
		t.Fatalf("total capacity changed under retirement: %d -> %d", before, after)
	}
	mods := pm.Modules()
	if mods[0].Capacity != 1<<20-4096 || mods[1].Capacity != 1<<20+4096 {
		t.Fatalf("capacity did not follow the page: nvm=%d dram=%d",
			mods[0].Capacity, mods[1].Capacity)
	}

	// Accesses to the retired page now land on the DRAM-side module.
	pm.Load(0x3000, 64)
	pm.Load(0x5000, 64) // healthy in-range address stays on NVM
	mods = pm.Modules()
	if mods[1].Stats.Loads != 1 {
		t.Fatalf("retired-page load went to %s, want the other-side module", mods[0].Name)
	}
	if mods[0].Stats.Loads != 1 {
		t.Fatal("healthy in-range load left the range-side module")
	}
}
