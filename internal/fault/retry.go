package fault

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Retry defaults, applied by RetryPolicy.Do for zero-valued fields.
const (
	// DefaultRetryAttempts is the total attempt budget (first try
	// included) when RetryPolicy.Attempts is zero.
	DefaultRetryAttempts = 3
	// DefaultRetryBase is the first backoff delay when
	// RetryPolicy.BaseDelay is zero.
	DefaultRetryBase = 25 * time.Millisecond
	// DefaultRetryMax caps the backoff delay when RetryPolicy.MaxDelay is
	// zero.
	DefaultRetryMax = 2 * time.Second
)

// RetryPolicy retries an operation that fails transiently, sleeping an
// exponentially growing, deterministically jittered delay between attempts.
// Only failures for which IsTransient holds are retried: permanent errors
// (validation failures, panics, deterministic device faults) return
// immediately.
//
// The jitter is the "equal jitter" scheme — each delay is uniformly drawn
// from [d/2, d) where d doubles per attempt from BaseDelay up to MaxDelay —
// with the draw derived from hash(Seed, key, attempt), so a fleet of
// clients retrying the same failure decorrelates while a fixed seed
// reproduces the exact schedule.
type RetryPolicy struct {
	// Attempts is the total attempt budget, first try included
	// (0 = DefaultRetryAttempts; 1 disables retries).
	Attempts int
	// BaseDelay is the first backoff delay (0 = DefaultRetryBase).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (0 = DefaultRetryMax).
	MaxDelay time.Duration
	// Seed drives the deterministic jitter draws.
	Seed uint64
	// Sleep waits between attempts (nil = a ctx-aware timer); tests
	// inject an instant clock.
	Sleep func(ctx context.Context, d time.Duration) error
	// Jitter overrides the deterministic jitter draw for a retry: it
	// returns a value in [0, 1) for (key, attempt). Nil uses the
	// hash(Seed, key, attempt) draw. Tests inject a fixed source to pin
	// exact delays without re-deriving the hash.
	Jitter func(key string, attempt int) float64
	// Budget, when non-nil, gates every retry (never the first
	// attempt): a retry is scheduled only if Spend returns true.
	// Sharing one budget across all RetryPolicy call sites caps the
	// process-wide retry amplification factor, so transient faults
	// during an overload degrade to fail-fast instead of multiplying
	// the offered load. A denied retry returns a *BudgetError wrapping
	// the attempt's error.
	Budget interface{ Spend() bool }
}

// BudgetError reports a retry schedule cut short because the shared retry
// budget was exhausted. It wraps the transient error that would otherwise
// have been retried. Callers should treat it as retryable by the *client*
// (after backing off) but must not count it against per-design health:
// the design did not fail, the process declined to retry.
type BudgetError struct {
	// Err is the transient error the denied retry would have addressed.
	Err error
}

// Error describes the denied retry and its cause.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("retry budget exhausted: %v", e.Err)
}

// Unwrap exposes the underlying transient error.
func (e *BudgetError) Unwrap() error { return e.Err }

// IsBudgetExhausted reports whether err (or anything it wraps) is a
// BudgetError.
func IsBudgetExhausted(err error) bool {
	var be *BudgetError
	return errors.As(err, &be)
}

// Delay returns the jittered backoff before the given attempt (attempt 1 is
// the first retry).
func (p RetryPolicy) Delay(key string, attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = DefaultRetryBase
	}
	max := p.MaxDelay
	if max <= 0 {
		max = DefaultRetryMax
	}
	d := base << (attempt - 1)
	if d <= 0 || d > max {
		d = max
	}
	var u float64
	if p.Jitter != nil {
		u = p.Jitter(key, attempt)
	} else {
		u = unit(hash(p.Seed, hashString(key), uint64(attempt)))
	}
	return d/2 + time.Duration(u*float64(d/2))
}

// sleep waits d or until ctx is done.
func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs fn until it succeeds, fails permanently, or the attempt budget is
// spent. fn receives the zero-based attempt number (so callers can count
// retries). key seeds the jitter draws; ctx cancels the inter-attempt
// sleeps (the in-flight fn must watch ctx itself). The returned error is
// fn's last error, ctx's error when cancellation cut the schedule short, or
// a *BudgetError when the shared retry Budget denied a retry.
func (p RetryPolicy) Do(ctx context.Context, key string, fn func(attempt int) error) error {
	attempts := p.Attempts
	if attempts == 0 {
		attempts = DefaultRetryAttempts
	}
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if p.Budget != nil && !p.Budget.Spend() {
				return &BudgetError{Err: err}
			}
			if serr := p.sleep(ctx, p.Delay(key, a)); serr != nil {
				return serr
			}
		}
		err = fn(a)
		if err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}
