package fault

import (
	"sync"
	"time"
)

// Breaker states.
const (
	// StateClosed passes requests through, counting consecutive failures.
	StateClosed State = iota
	// StateOpen rejects requests until the cooldown elapses.
	StateOpen
	// StateHalfOpen admits a single probe; its outcome closes or reopens.
	StateHalfOpen
)

// State is a circuit breaker's position.
type State int

// String names the state.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// DefaultBreakerThreshold is the consecutive-failure count that opens a
// breaker when BreakerConfig.Threshold is zero.
const DefaultBreakerThreshold = 5

// DefaultBreakerCooldown is the open-state duration before a probe is
// admitted, when BreakerConfig.Cooldown is zero.
const DefaultBreakerCooldown = 15 * time.Second

// BreakerConfig parameterizes a Breaker (and every breaker of a
// BreakerSet). The zero value selects the defaults; Threshold < 0 disables
// breaking entirely.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// open (0 = DefaultBreakerThreshold, < 0 = disabled).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (0 = DefaultBreakerCooldown).
	Cooldown time.Duration
	// Now is the clock (nil = time.Now); tests inject a fake.
	Now func() time.Time
}

// withDefaults resolves zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = DefaultBreakerThreshold
	}
	if c.Cooldown == 0 {
		c.Cooldown = DefaultBreakerCooldown
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a consecutive-failure circuit breaker: Threshold failures in a
// row trip it open; after Cooldown one probe is admitted (half-open); the
// probe's success closes it, failure reopens it. A poisoned design point
// trips its breaker instead of burning the worker pool on every request.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	state    State
	fails    int
	openedAt time.Time
	probing  bool
}

// NewBreaker builds a breaker from cfg (zero value = defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may proceed. When it may not, retryAfter
// is how long until the breaker will admit a probe. Each admitted request
// must be concluded — with Record when its outcome reflects the protected
// resource's health, or with Release when it does not — else a half-open
// probe reservation leaks and the breaker rejects forever.
func (b *Breaker) Allow() (retryAfter time.Duration, ok bool) {
	if b.cfg.Threshold < 0 {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return 0, true
	case StateOpen:
		wait := b.cfg.Cooldown - b.cfg.Now().Sub(b.openedAt)
		if wait > 0 {
			return wait, false
		}
		b.state = StateHalfOpen
		b.probing = true
		return 0, true
	default: // StateHalfOpen
		if b.probing {
			// One probe is already in flight; hold the rest back for
			// roughly the remaining cooldown.
			return b.cfg.Cooldown, false
		}
		b.probing = true
		return 0, true
	}
}

// Release concludes an admitted request without a health verdict. If the
// request held the half-open probe reservation, the reservation is returned
// (the breaker stays half-open) so the next Allow admits a fresh probe;
// otherwise nothing changes. Callers use it for outcomes that say nothing
// about the protected resource — backpressure rejections, client
// cancellations, deduplicated followers whose leader reports the verdict —
// because an admitted probe that is never concluded would reject the key
// forever. Release cannot tell which admitted request set the reservation,
// so a concurrent closed-state admission releasing during someone else's
// probe may let one extra probe through; that is benign.
func (b *Breaker) Release() {
	if b.cfg.Threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateHalfOpen {
		b.probing = false
	}
}

// Record concludes an admitted request. opened reports whether this record
// tripped the breaker open (for metrics).
func (b *Breaker) Record(success bool) (opened bool) {
	if b.cfg.Threshold < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateHalfOpen {
		b.probing = false
		if success {
			b.state = StateClosed
			b.fails = 0
			return false
		}
		b.state = StateOpen
		b.openedAt = b.cfg.Now()
		return true
	}
	if success {
		b.fails = 0
		return false
	}
	b.fails++
	if b.state == StateClosed && b.fails >= b.cfg.Threshold {
		b.state = StateOpen
		b.openedAt = b.cfg.Now()
		return true
	}
	return false
}

// State returns the breaker's current position (open breakers past their
// cooldown still report open until a probe is admitted).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// maxBreakers bounds a BreakerSet's key space; beyond it, new keys pass
// through untracked (custom design names are caller-controlled, so the map
// must not grow without bound).
const maxBreakers = 4096

// BreakerSet is a keyed collection of breakers sharing one configuration —
// the serving layer keys it by design point.
type BreakerSet struct {
	mu  sync.Mutex
	cfg BreakerConfig
	m   map[string]*Breaker
}

// NewBreakerSet builds an empty set (zero cfg = defaults).
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), m: map[string]*Breaker{}}
}

// get returns the breaker for key, creating it under the set bound.
func (s *BreakerSet) get(key string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.m[key]; ok {
		return b
	}
	if len(s.m) >= maxBreakers {
		return nil
	}
	b := NewBreaker(s.cfg)
	s.m[key] = b
	return b
}

// Allow reports whether a request against key may proceed (see
// Breaker.Allow). Keys beyond the set bound always proceed, untracked.
func (s *BreakerSet) Allow(key string) (retryAfter time.Duration, ok bool) {
	b := s.get(key)
	if b == nil {
		return 0, true
	}
	return b.Allow()
}

// Record concludes an admitted request against key; opened reports whether
// this record tripped the key's breaker.
func (s *BreakerSet) Record(key string, success bool) (opened bool) {
	b := s.get(key)
	if b == nil {
		return false
	}
	return b.Record(success)
}

// Release concludes an admitted request against key without a verdict (see
// Breaker.Release).
func (s *BreakerSet) Release(key string) {
	if b := s.get(key); b != nil {
		b.Release()
	}
}

// StateCounts returns how many of the set's breakers sit in each state,
// keyed by State.String() — the data behind the serving layer's
// breaker-state gauge on /metrics. States that no breaker occupies are
// present with a zero count so the gauge's label set stays stable.
func (s *BreakerSet) StateCounts() map[string]int {
	s.mu.Lock()
	breakers := make([]*Breaker, 0, len(s.m))
	for _, b := range s.m {
		breakers = append(breakers, b)
	}
	s.mu.Unlock()
	counts := map[string]int{
		StateClosed.String():   0,
		StateOpen.String():     0,
		StateHalfOpen.String(): 0,
	}
	for _, b := range breakers {
		counts[b.State().String()]++
	}
	return counts
}

// State returns the breaker state for key (closed for untracked keys).
func (s *BreakerSet) State(key string) State {
	b := s.get(key)
	if b == nil {
		return StateClosed
	}
	return b.State()
}
