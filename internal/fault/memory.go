package fault

import (
	"math"

	"hybridmem/internal/core"
	"hybridmem/internal/wear"
)

// DefaultPageBytes is the page-retirement granularity when Config.PageBytes
// is zero (a 4KB device page).
const DefaultPageBytes = 4096

// DefaultLineBytes is the fault-tracking line granularity when
// Config.LineBytes is zero (one 64B ECC word / cache sector).
const DefaultLineBytes = 64

// Config parameterizes the NVM device-fault model applied to a terminal
// memory. The zero value injects nothing; Seed makes every probabilistic
// decision deterministic (see the package comment).
type Config struct {
	// Seed drives all probabilistic decisions. Two evaluations of the same
	// stream with the same Seed produce identical Stats.
	Seed uint64
	// BitErrorRate is the transient (soft) bit-error probability per bit
	// accessed. Single-bit errors are corrected by the SECDED ECC model;
	// double-bit errors — and single-bit errors on a line whose ECC budget
	// is already consumed by a stuck cell — are detected-uncorrectable and
	// retire the containing page. Zero disables transient errors.
	BitErrorRate float64
	// EnduranceWrites is the mean number of writes a line endures before
	// developing a permanent stuck-at cell. Each line's actual threshold is
	// sampled deterministically in [E/2, 3E/2); at twice its threshold the
	// line degrades to a multi-bit stuck fault and its page is retired.
	// Zero disables wear-driven permanent faults.
	EnduranceWrites uint64
	// PageBytes is the retirement granularity (0 = DefaultPageBytes).
	PageBytes uint64
	// LineBytes is the fault-tracking granularity (0 = DefaultLineBytes).
	LineBytes uint64
}

// withDefaults resolves zero-valued granularities.
func (c Config) withDefaults() Config {
	if c.PageBytes == 0 {
		c.PageBytes = DefaultPageBytes
	}
	if c.LineBytes == 0 {
		c.LineBytes = DefaultLineBytes
	}
	return c
}

// Stats counts the fault model's outcomes over one memory's lifetime.
type Stats struct {
	// Accesses is the number of terminal accesses the model inspected.
	Accesses uint64
	// Corrected counts accesses whose error (a transient single-bit flip,
	// or a permanent stuck cell re-corrected on every access) was repaired
	// by ECC.
	Corrected uint64
	// Uncorrected counts detected-uncorrectable accesses: double-bit
	// transients, transients on stuck lines, and wear-out events. Each
	// retires the containing page.
	Uncorrected uint64
	// StuckLines is the number of lines that developed a permanent
	// stuck-at cell from write wear.
	StuckLines uint64
	// RetiredPages is the number of pages taken out of service.
	RetiredPages uint64
	// Remapped counts accesses served from retired pages' replacement
	// frames (the DRAM partition under NDM when the remap took effect,
	// spare capacity for terminals without a retirer). Accesses to a page
	// whose remap failed still hit the original module and are not counted.
	Remapped uint64
}

// Add returns the element-wise sum of two fault counters, for aggregating
// per-workload statistics into design totals.
func (s Stats) Add(o Stats) Stats {
	s.Accesses += o.Accesses
	s.Corrected += o.Corrected
	s.Uncorrected += o.Uncorrected
	s.StuckLines += o.StuckLines
	s.RetiredPages += o.RetiredPages
	s.Remapped += o.Remapped
	return s
}

// UncorrectedRate returns Uncorrected / Accesses (0 when idle) — the
// chaos harness bounds this.
func (s Stats) UncorrectedRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Uncorrected) / float64(s.Accesses)
}

// PageRetirer is implemented by memories that can gracefully remap a
// retired page onto healthy frames — core.PartitionedMemory (the NDM
// terminal) moves the page's routing and capacity to its DRAM partition.
type PageRetirer interface {
	// RetirePage removes [start, start+size) from the failing module,
	// reporting whether the page was newly retired.
	RetirePage(start, size uint64) bool
}

// FaultProber is implemented by hybrid terminals whose address space is
// only partially backed by fault-prone (NVM) devices —
// core.PartitionedMemory (the NDM terminal) reports its DRAM-side
// addresses as not fault-prone, so they draw no wear and no injected
// errors.
type FaultProber interface {
	// FaultProne reports whether addr lives on a device subject to the
	// fault model.
	FaultProne(addr uint64) bool
}

// Memory wraps a terminal core.Memory with the deterministic device-fault
// model: per-line write wear (via wear.Tracker) breeding permanent stuck-at
// cells, transient bit errors filtered by a SECDED ECC model, page
// retirement on uncorrectable errors, and graceful degradation by remapping
// retired pages (through PageRetirer when the terminal supports it).
type Memory struct {
	inner   core.Memory
	cfg     Config
	tracker *wear.Tracker
	retirer PageRetirer // non-nil when inner can remap (NDM)
	prober  FaultProber // non-nil when inner is only partially fault-prone
	seq     uint64      // per-memory access sequence for transient sampling
	stuck   map[uint64]uint8
	retired map[uint64]bool // page index -> remapped onto healthy frames
	stats   Stats
}

// Wrap returns mem wrapped with the fault model. If mem implements
// PageRetirer, retired pages are remapped through it; if mem implements
// FaultProber, only its fault-prone addresses draw wear and injected
// errors.
func Wrap(mem core.Memory, cfg Config) *Memory {
	cfg = cfg.withDefaults()
	m := &Memory{
		inner:   mem,
		cfg:     cfg,
		tracker: wear.NewTracker(cfg.LineBytes),
		stuck:   map[uint64]uint8{},
		retired: map[uint64]bool{},
	}
	if r, ok := mem.(PageRetirer); ok {
		m.retirer = r
	}
	if p, ok := mem.(FaultProber); ok {
		m.prober = p
	}
	return m
}

// threshold returns the line's sampled endurance threshold in [E/2, 3E/2),
// deterministic per (seed, line).
func (m *Memory) threshold(line uint64) uint64 {
	e := m.cfg.EnduranceWrites
	t := e/2 + uint64(unit(hash(m.cfg.Seed, line, 0x57ea7))*float64(e))
	if t == 0 {
		t = 1
	}
	return t
}

// retire takes the page out of service, remapping it when the terminal
// supports graceful degradation. A terminal without a retirer is assumed to
// hold spare frames; a retirer that refuses the remap (page outside its
// partition ranges) leaves the page retired-without-remap, so its traffic
// keeps counting against the original module rather than as Remapped.
func (m *Memory) retire(page uint64) {
	if _, ok := m.retired[page]; ok {
		return
	}
	remapped := true
	if m.retirer != nil {
		remapped = m.retirer.RetirePage(page*m.cfg.PageBytes, m.cfg.PageBytes)
	}
	m.retired[page] = remapped
	m.stats.RetiredPages++
}

// inject runs the fault model for one access. Terminal accesses never cross
// the line of the level above, so attributing the whole access to its first
// fault line is exact for cache-fed streams and a documented approximation
// for raw streams.
func (m *Memory) inject(addr, size uint64, write bool) {
	m.stats.Accesses++
	m.seq++
	if size == 0 {
		size = 1
	}
	line := addr / m.cfg.LineBytes
	page := addr / m.cfg.PageBytes
	if remapped, ok := m.retired[page]; ok {
		// A retired page injects no further faults: remapped pages live on
		// healthy replacement frames, and a page whose remap failed is
		// already maximally degraded. Only remapped traffic counts as such.
		if remapped {
			m.stats.Remapped++
		}
		return
	}
	if m.prober != nil && !m.prober.FaultProne(addr) {
		// The address is not backed by a fault-prone device (the DRAM side
		// of a hybrid terminal): no wear, no injected errors.
		return
	}

	// Wear-driven permanent faults: charge the write, then compare the
	// line's accumulated count against its sampled endurance threshold.
	if write && m.cfg.EnduranceWrites > 0 {
		m.tracker.RecordWrite(addr, size)
		c := m.tracker.Count(line)
		t := m.threshold(line)
		if m.stuck[line] == 0 && c >= t {
			m.stuck[line] = 1
			m.stats.StuckLines++
		}
		if m.stuck[line] == 1 && c >= 2*t {
			// Second cell fails: beyond SECDED, the write is lost and
			// the page is retired.
			m.stuck[line] = 2
			m.stats.Uncorrected++
			m.retire(page)
			return
		}
	}

	// Transient bit errors under SECDED: single-bit corrects, multi-bit
	// (or single-bit with the ECC budget consumed by a stuck cell) is
	// detected-uncorrectable. The error count per access is Poisson with
	// mean lambda = BER * bits; the exact terms P(>=1) = 1-e^-λ and
	// P(>=2) = 1-e^-λ-λe^-λ are used rather than the small-λ
	// approximations λ and λ²/2, which exceed 1 (and cross each other)
	// once BER * access bits grows large.
	sev := m.stuck[line]
	lambda := m.cfg.BitErrorRate * float64(size*8)
	if lambda <= 0 && sev == 0 {
		return
	}
	u := unit(hash(m.cfg.Seed, line, m.seq))
	pAny := -math.Expm1(-lambda)
	pMulti := pAny - lambda*math.Exp(-lambda)
	switch {
	case u < pMulti:
		m.stats.Uncorrected++
		m.retire(page)
	case u < pAny:
		if sev > 0 {
			m.stats.Uncorrected++
			m.retire(page)
		} else {
			m.stats.Corrected++
		}
	default:
		if sev > 0 {
			// ECC silently re-corrects the stuck cell on every access.
			m.stats.Corrected++
		}
	}
}

// Load implements core.Memory.
func (m *Memory) Load(addr, sizeBytes uint64) {
	m.inject(addr, sizeBytes, false)
	m.inner.Load(addr, sizeBytes)
}

// Store implements core.Memory.
func (m *Memory) Store(addr, sizeBytes uint64) {
	m.inject(addr, sizeBytes, true)
	m.inner.Store(addr, sizeBytes)
}

// Modules implements core.Memory by delegating to the wrapped terminal.
func (m *Memory) Modules() []core.LevelStats { return m.inner.Modules() }

// FaultStats returns the accumulated fault counters.
func (m *Memory) FaultStats() Stats { return m.stats }

// WearStats summarizes the write-wear distribution the fault model observed
// over a module of capacityBytes.
func (m *Memory) WearStats(capacityBytes uint64) wear.Stats {
	return m.tracker.Stats(capacityBytes)
}

// Inner returns the wrapped terminal memory.
func (m *Memory) Inner() core.Memory { return m.inner }
