package tech

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// TestTable1Values pins the predefined technologies to the paper's Table 1.
func TestTable1Values(t *testing.T) {
	cases := []struct {
		tech                 Tech
		rdNS, wrNS, rdE, wrE float64
	}{
		{DRAM, 10, 10, 10, 10},
		{PCM, 21, 100, 12.4, 210.3},
		{STTRAM, 35, 35, 58.5, 67.7},
		{FeRAM, 40, 65, 12.4, 210},
		{EDRAM, 4.4, 4.4, 3.11, 3.09},
		{HMC, 0.18, 0.18, 0.48, 10.48},
	}
	for _, c := range cases {
		if c.tech.ReadNS != c.rdNS || c.tech.WriteNS != c.wrNS {
			t.Errorf("%s latency = %g/%g, want %g/%g", c.tech.Name, c.tech.ReadNS, c.tech.WriteNS, c.rdNS, c.wrNS)
		}
		if c.tech.ReadPJPerBit != c.rdE || c.tech.WritePJPerBit != c.wrE {
			t.Errorf("%s energy = %g/%g, want %g/%g", c.tech.Name, c.tech.ReadPJPerBit, c.tech.WritePJPerBit, c.rdE, c.wrE)
		}
	}
}

// TestNVMZeroStatic pins the paper's assumption that NVM draws no static
// power.
func TestNVMZeroStatic(t *testing.T) {
	for _, nv := range NVMs() {
		if got := nv.StaticPowerW(4 << 30); got != 0 {
			t.Errorf("%s static power = %g W, want 0", nv.Name, got)
		}
		if !nv.NonVolatile {
			t.Errorf("%s not marked non-volatile", nv.Name)
		}
	}
}

func TestVolatileTechsHaveStatic(t *testing.T) {
	for _, v := range []Tech{DRAM, EDRAM, HMC, SRAML1, SRAML2, SRAML3} {
		if v.StaticPowerW(1<<30) <= 0 {
			t.Errorf("%s static power should be positive", v.Name)
		}
		if v.NonVolatile {
			t.Errorf("%s wrongly marked non-volatile", v.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"DRAM", "dram", "RAM", "PCM", "sttram", "FeRAM", "eDRAM", "hmc"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("flux-capacitor"); err == nil {
		t.Error("ByName of unknown tech should fail")
	} else if !strings.Contains(err.Error(), "unknown technology") {
		t.Errorf("unexpected error text: %v", err)
	}
}

func TestNamesSortedUnique(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("Names() = %v, want 6 entries", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted/unique: %v", names)
		}
	}
}

func TestCandidateSets(t *testing.T) {
	if got := NVMs(); len(got) != 3 || got[0].Name != "PCM" || got[1].Name != "STTRAM" || got[2].Name != "FeRAM" {
		t.Errorf("NVMs() = %v", got)
	}
	if got := LLCs(); len(got) != 2 || got[0].Name != "eDRAM" || got[1].Name != "HMC" {
		t.Errorf("LLCs() = %v", got)
	}
	for _, nv := range NVMs() {
		if !nv.IsNVMCandidate() {
			t.Errorf("%s should be an NVM candidate", nv.Name)
		}
	}
	if DRAM.IsNVMCandidate() || EDRAM.IsNVMCandidate() {
		t.Error("DRAM/eDRAM must not be NVM candidates")
	}
}

func TestStaticPowerLinearInCapacity(t *testing.T) {
	base := DRAM.StaticPowerW(1 << 30)
	if got := DRAM.StaticPowerW(4 << 30); math.Abs(got-4*base) > 1e-12 {
		t.Errorf("static power not linear: 1GB=%g, 4GB=%g", base, got)
	}
	if got := DRAM.StaticPowerW(0); got != 0 {
		t.Errorf("zero-capacity static = %g, want 0", got)
	}
}

func TestWithStaticAndFixed(t *testing.T) {
	tc := DRAM.WithStatic(1.0, 0.5)
	if got := tc.StaticPowerW(2 << 30); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("StaticPowerW = %g, want 2.5", got)
	}
}

func TestLatencyScale(t *testing.T) {
	s := DRAM.WithLatencyScale(5, 2)
	if s.ReadNS != 50 || s.WriteNS != 20 {
		t.Errorf("scaled latency = %g/%g, want 50/20", s.ReadNS, s.WriteNS)
	}
	// Energy untouched.
	if s.ReadPJPerBit != DRAM.ReadPJPerBit || s.WritePJPerBit != DRAM.WritePJPerBit {
		t.Error("latency scaling must not touch energy")
	}
	if !strings.Contains(s.Name, "DRAM") {
		t.Errorf("scaled name %q should mention base", s.Name)
	}
}

func TestEnergyScale(t *testing.T) {
	s := DRAM.WithEnergyScale(2, 9)
	if s.ReadPJPerBit != 20 || s.WritePJPerBit != 90 {
		t.Errorf("scaled energy = %g/%g, want 20/90", s.ReadPJPerBit, s.WritePJPerBit)
	}
	if s.ReadNS != DRAM.ReadNS || s.WriteNS != DRAM.WriteNS {
		t.Error("energy scaling must not touch latency")
	}
}

// TestScalingComposes is a property test: scaling by a then b equals
// scaling by a*b, for positive multipliers.
func TestScalingComposes(t *testing.T) {
	f := func(a, b float64) bool {
		a = 0.5 + math.Mod(math.Abs(a), 10)
		b = 0.5 + math.Mod(math.Abs(b), 10)
		ab := DRAM.WithLatencyScale(a, a).WithLatencyScale(b, b)
		direct := DRAM.WithLatencyScale(a*b, a*b)
		return math.Abs(ab.ReadNS-direct.ReadNS) < 1e-9 &&
			math.Abs(ab.WriteNS-direct.WriteNS) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	for _, good := range []Tech{DRAM, PCM, STTRAM, FeRAM, EDRAM, HMC, SRAML1, SRAML2, SRAML3} {
		if err := good.Validate(); err != nil {
			t.Errorf("%s should validate: %v", good.Name, err)
		}
	}
	bad := []Tech{
		{},
		{Name: "x", ReadNS: 0, WriteNS: 1},
		{Name: "x", ReadNS: 1, WriteNS: -1},
		{Name: "x", ReadNS: 1, WriteNS: 1, ReadPJPerBit: -1},
		{Name: "x", ReadNS: 1, WriteNS: 1, StaticWPerGB: -1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad tech %d should fail validation", i)
		}
	}
}

func TestAccessHelpers(t *testing.T) {
	if PCM.AccessNS(false) != 21 || PCM.AccessNS(true) != 100 {
		t.Error("AccessNS wrong for PCM")
	}
	if got := PCM.AccessPJ(512, true); math.Abs(got-512*210.3) > 1e-9 {
		t.Errorf("AccessPJ(512, write) = %g", got)
	}
	if got := PCM.AccessPJ(512, false); math.Abs(got-512*12.4) > 1e-9 {
		t.Errorf("AccessPJ(512, read) = %g", got)
	}
}

func TestString(t *testing.T) {
	s := PCM.String()
	for _, want := range []string{"PCM", "21", "100", "12.4", "210.3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
