// Package tech models memory technology characteristics.
//
// It reproduces Table 1 of the paper (read/write delay in nanoseconds and
// read/write energy in pJ/bit for DRAM, PCM, STT-RAM, FeRAM, eDRAM, and HMC)
// and adds the static/refresh power figures the paper references but does
// not print. The paper sourced cache, DRAM, and eDRAM parameters from CACTI,
// PCM and STT-RAM from the ITRS 2013 report, FeRAM from published chain-FeRAM
// literature, HMC from prototype measurements, and DRAM background power from
// the Micron system power calculator. Our static-power constants are chosen
// in that spirit and are documented on each value; the paper's qualitative
// conclusions require only that (a) NVM draws no static power, (b) DRAM and
// eDRAM refresh power grows with capacity, and (c) SRAM leakage is
// significant for a 20MB last-level cache.
package tech

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Tech describes one memory technology: access latencies, per-bit dynamic
// energies, and static (leakage plus refresh) power. The zero value is not
// useful; use the predefined variables or NewCustom.
type Tech struct {
	// Name identifies the technology (e.g. "DRAM", "PCM").
	Name string

	// ReadNS and WriteNS are access delays in nanoseconds (Table 1).
	ReadNS  float64
	WriteNS float64

	// ReadPJPerBit and WritePJPerBit are dynamic access energies in
	// picojoules per bit transferred (Table 1).
	ReadPJPerBit  float64
	WritePJPerBit float64

	// StaticWPerGB is the capacity-proportional static/refresh power in
	// watts per gigabyte. Zero for non-volatile technologies, per the
	// paper's assumption that NVM draws no static power.
	StaticWPerGB float64

	// StaticWFixed is a capacity-independent static power component
	// (peripheral/controller leakage), in watts.
	StaticWFixed float64

	// NonVolatile reports whether the technology retains data without
	// power (retention on the order of years rather than nanoseconds).
	NonVolatile bool
}

// Predefined technologies. Latency and dynamic energy follow Table 1 of the
// paper verbatim. Static power sources are noted per entry.
var (
	// DRAM is commodity DDR DRAM (Table 1 row "RAM"). Static power
	// follows the Micron power-calculator ballpark of a few hundred
	// milliwatts per gigabyte of background plus refresh power.
	DRAM = Tech{
		Name: "DRAM", ReadNS: 10, WriteNS: 10,
		ReadPJPerBit: 10, WritePJPerBit: 10,
		// Micron power-calculator ballpark: background plus refresh
		// power of idle DDR3, ~120mW per GB.
		StaticWPerGB: 0.12,
	}

	// PCM is phase-change memory (ITRS 2013): strongly asymmetric, with
	// expensive writes, and no refresh.
	PCM = Tech{
		Name: "PCM", ReadNS: 21, WriteNS: 100,
		ReadPJPerBit: 12.4, WritePJPerBit: 210.3,
		NonVolatile: true,
	}

	// STTRAM is spin-torque-transfer magnetic RAM (ITRS 2013): symmetric
	// latency, moderate energy, high endurance, no refresh.
	STTRAM = Tech{
		Name: "STTRAM", ReadNS: 35, WriteNS: 35,
		ReadPJPerBit: 58.5, WritePJPerBit: 67.7,
		NonVolatile: true,
	}

	// FeRAM is chain ferro-electric RAM (Hoya et al., ISSCC 2006):
	// DRAM-like reads, slower and energy-hungry writes, no refresh.
	FeRAM = Tech{
		Name: "FeRAM", ReadNS: 40, WriteNS: 65,
		ReadPJPerBit: 12.4, WritePJPerBit: 210,
		NonVolatile: true,
	}

	// EDRAM is on-chip embedded DRAM (CACTI): much faster than DDR DRAM,
	// but it must be refreshed and its dense on-chip arrays leak, so its
	// per-capacity static power exceeds commodity DRAM's.
	EDRAM = Tech{
		Name: "eDRAM", ReadNS: 4.4, WriteNS: 4.4,
		ReadPJPerBit: 3.11, WritePJPerBit: 3.09,
		StaticWPerGB: 1.2, // retention + refresh for dense on-chip arrays
	}

	// HMC is the Hybrid Memory Cube (prototype measurements, Jeddeloh &
	// Keeth 2012): through-silicon-via stacking gives very low access
	// latency and read energy; the logic layer contributes a fixed
	// static power.
	HMC = Tech{
		Name: "HMC", ReadNS: 0.18, WriteNS: 0.18,
		ReadPJPerBit: 0.48, WritePJPerBit: 10.48,
		StaticWPerGB: 1.6, // stacked DRAM refresh plus logic-layer share
	}

	// SRAML1, SRAML2, and SRAML3 model the reference system's on-chip
	// SRAM caches (Sandy Bridge-like latencies; CACTI-flavoured energy
	// and leakage). The paper takes these from CACTI.
	SRAML1 = Tech{
		Name: "SRAM-L1", ReadNS: 1.3, WriteNS: 1.3,
		ReadPJPerBit: 0.35, WritePJPerBit: 0.35,
		StaticWPerGB: 1536, // ~1.5 W/MB of fast SRAM leakage
	}
	SRAML2 = Tech{
		Name: "SRAM-L2", ReadNS: 3.3, WriteNS: 3.3,
		ReadPJPerBit: 0.6, WritePJPerBit: 0.6,
		StaticWPerGB: 1024, // ~1 W/MB
	}
	SRAML3 = Tech{
		Name: "SRAM-L3", ReadNS: 7.7, WriteNS: 7.7,
		ReadPJPerBit: 1.0, WritePJPerBit: 1.0,
		StaticWPerGB: 160, // ~2-4W for a 20MB LLC, per CACTI's ballpark
	}
)

// nvmNames lists the non-volatile main-memory candidates the paper
// evaluates.
var nvmNames = []string{"PCM", "STTRAM", "FeRAM"}

// registry maps canonical lower-case names to technologies.
var registry = map[string]Tech{
	"dram":   DRAM,
	"ram":    DRAM, // Table 1 labels the DRAM row "RAM"
	"pcm":    PCM,
	"sttram": STTRAM,
	"feram":  FeRAM,
	"edram":  EDRAM,
	"hmc":    HMC,
}

// ByName looks a technology up by case-insensitive name ("DRAM", "PCM",
// "STTRAM", "FeRAM", "eDRAM", "HMC"; "RAM" is accepted as an alias for DRAM).
// Unknown names return a *UnknownError.
func ByName(name string) (Tech, error) {
	t, ok := registry[strings.ToLower(name)]
	if !ok {
		return Tech{}, &UnknownError{Name: name, Known: Names()}
	}
	return t, nil
}

// Names returns the canonical registered technology names, sorted.
func Names() []string {
	seen := map[string]bool{}
	var out []string
	for _, t := range registry {
		if !seen[t.Name] {
			seen[t.Name] = true
			out = append(out, t.Name)
		}
	}
	sort.Strings(out)
	return out
}

// NVMs returns the non-volatile main-memory technologies the paper
// evaluates: PCM, STT-RAM, and FeRAM.
func NVMs() []Tech { return []Tech{PCM, STTRAM, FeRAM} }

// LLCs returns the fast volatile last-level-cache technologies the paper
// evaluates: eDRAM and HMC.
func LLCs() []Tech { return []Tech{EDRAM, HMC} }

// StaticPowerW returns the static power drawn by capacityBytes of this
// technology, in watts: the fixed component plus the capacity-proportional
// component. Non-volatile technologies with zero coefficients return zero.
func (t Tech) StaticPowerW(capacityBytes uint64) float64 {
	const bytesPerGB = 1 << 30
	return t.StaticWFixed + t.StaticWPerGB*float64(capacityBytes)/bytesPerGB
}

// WithLatencyScale returns a copy of t with read and write latency
// multiplied by readMult and writeMult. It is the generalization mechanism
// behind the paper's Figure 9 heat map, which scales DRAM latency to stand
// in for arbitrary future technologies.
func (t Tech) WithLatencyScale(readMult, writeMult float64) Tech {
	t.ReadNS *= readMult
	t.WriteNS *= writeMult
	t.Name = fmt.Sprintf("%s[lat r%gx w%gx]", t.Name, readMult, writeMult)
	return t
}

// WithEnergyScale returns a copy of t with read and write per-bit energy
// multiplied by readMult and writeMult (the paper's Figure 10 heat map).
func (t Tech) WithEnergyScale(readMult, writeMult float64) Tech {
	t.ReadPJPerBit *= readMult
	t.WritePJPerBit *= writeMult
	t.Name = fmt.Sprintf("%s[en r%gx w%gx]", t.Name, readMult, writeMult)
	return t
}

// WithStatic returns a copy of t with the given static-power coefficients.
func (t Tech) WithStatic(wPerGB, wFixed float64) Tech {
	t.StaticWPerGB = wPerGB
	t.StaticWFixed = wFixed
	return t
}

// Validate reports the first invalid parameter of the technology as a typed
// error: an empty name, a non-finite/non-positive latency (*ValueError), or
// a non-finite/negative energy or static-power coefficient (*ValueError).
// NaN and infinities are rejected explicitly — a plain `<= 0` comparison
// lets NaN flow silently into the AMAT and energy math.
func (t Tech) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("tech: empty name")
	}
	positive := []struct {
		field string
		v     float64
	}{
		{"read_ns", t.ReadNS},
		{"write_ns", t.WriteNS},
	}
	for _, p := range positive {
		if math.IsNaN(p.v) || math.IsInf(p.v, 0) || p.v <= 0 {
			return &ValueError{Tech: t.Name, Field: p.field, Value: p.v, Reason: "must be finite and > 0"}
		}
	}
	nonNegative := []struct {
		field string
		v     float64
	}{
		{"read_pj_per_bit", t.ReadPJPerBit},
		{"write_pj_per_bit", t.WritePJPerBit},
		{"static_w_per_gb", t.StaticWPerGB},
		{"static_w_fixed", t.StaticWFixed},
	}
	for _, p := range nonNegative {
		if math.IsNaN(p.v) || math.IsInf(p.v, 0) || p.v < 0 {
			return &ValueError{Tech: t.Name, Field: p.field, Value: p.v, Reason: "must be finite and >= 0"}
		}
	}
	return nil
}

// NewCustom validates and returns a user-defined technology. It is the
// front door for characterizations that did not come from the embedded
// catalog: malformed values (NaN, infinities, negative energies,
// zero-latency devices) are rejected with a typed *ValueError instead of
// flowing silently into the AMAT/energy math.
func NewCustom(t Tech) (Tech, error) {
	if err := t.Validate(); err != nil {
		return Tech{}, err
	}
	return t, nil
}

// IsNVMCandidate reports whether t is one of the paper's non-volatile
// main-memory candidates (PCM, STT-RAM, FeRAM).
func (t Tech) IsNVMCandidate() bool {
	for _, n := range nvmNames {
		if t.Name == n {
			return true
		}
	}
	return false
}

// AccessNS returns the access latency for a load or store.
func (t Tech) AccessNS(write bool) float64 {
	if write {
		return t.WriteNS
	}
	return t.ReadNS
}

// AccessPJ returns the dynamic energy in picojoules for transferring the
// given number of bits in the given direction.
func (t Tech) AccessPJ(bits uint64, write bool) float64 {
	if write {
		return t.WritePJPerBit * float64(bits)
	}
	return t.ReadPJPerBit * float64(bits)
}

// String formats the technology as its Table 1 row.
func (t Tech) String() string {
	return fmt.Sprintf("%s: read %gns write %gns, read %gpJ/b write %gpJ/b, static %gW/GB+%gW",
		t.Name, t.ReadNS, t.WriteNS, t.ReadPJPerBit, t.WritePJPerBit, t.StaticWPerGB, t.StaticWFixed)
}
