package tech

import (
	"crypto/sha256"
	_ "embed"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// CatalogFormat is the schema identifier a catalog file must declare in its
// "format" field. The suffix is the schema version: parsers accept exactly
// the versions they understand, so an incompatible future schema fails
// loudly instead of half-loading. FORMATS.md documents the schema
// normatively.
const CatalogFormat = "hybridmem-catalog/1"

// Entry classes. Every catalog entry declares the role its technology can
// play in a hierarchy; design-space validation (which technologies are legal
// on the NVM axis, the LLC axis, the SRAM prefix) keys off the class rather
// than hardcoded name lists.
const (
	// ClassSRAM marks on-chip SRAM cache technologies (the L1/L2/L3 prefix).
	ClassSRAM = "sram"
	// ClassDRAM marks commodity DRAM main-memory technologies.
	ClassDRAM = "dram"
	// ClassLLC marks fourth-level-cache technologies (eDRAM, HMC).
	ClassLLC = "llc"
	// ClassNVM marks non-volatile main-memory candidates.
	ClassNVM = "nvm"
)

// validClasses is the closed set of entry classes.
var validClasses = map[string]bool{ClassSRAM: true, ClassDRAM: true, ClassLLC: true, ClassNVM: true}

// Entry is one catalog row: a validated technology plus the metadata the
// design space needs to place it (class), resolve it (aliases), and audit it
// (source, extension flag).
type Entry struct {
	// Tech is the device characterization.
	Tech Tech
	// Class is one of the Class* constants.
	Class string
	// Aliases are additional case-insensitive lookup names.
	Aliases []string
	// Source documents where the numbers came from (paper table, report,
	// measurement).
	Source string
	// Extension marks entries beyond the paper's Table 1 set. Extension
	// entries resolve by name everywhere but are excluded from the
	// paper-reproduction default sweeps (NVMs, LLCs), which must stay
	// byte-identical to the 2014 evaluation.
	Extension bool
}

// entryJSON is the wire form of an Entry (see FORMATS.md, "Catalog files").
type entryJSON struct {
	Name          string   `json:"name"`
	Class         string   `json:"class"`
	Aliases       []string `json:"aliases,omitempty"`
	ReadNS        float64  `json:"read_ns"`
	WriteNS       float64  `json:"write_ns"`
	ReadPJPerBit  float64  `json:"read_pj_per_bit"`
	WritePJPerBit float64  `json:"write_pj_per_bit"`
	StaticWPerGB  float64  `json:"static_w_per_gb,omitempty"`
	StaticWFixed  float64  `json:"static_w_fixed,omitempty"`
	NonVolatile   bool     `json:"non_volatile,omitempty"`
	Extension     bool     `json:"extension,omitempty"`
	Source        string   `json:"source,omitempty"`
}

// catalogJSON is the wire form of a catalog file.
type catalogJSON struct {
	Format  string      `json:"format"`
	Name    string      `json:"name"`
	Version string      `json:"version"`
	Techs   []entryJSON `json:"techs"`
}

// Catalog is a validated, versioned set of technology characterizations —
// the data-driven replacement for this package's compile-time variables.
// Catalogs are immutable after construction; derive modified ones with
// WithEntries. The zero value is not useful; use Builtin, ParseCatalog,
// LoadCatalog, or NewCatalog.
type Catalog struct {
	name    string
	version string
	entries []Entry
	byName  map[string]Entry
	hash    string
}

// builtinJSON is the embedded default catalog: the paper's Table 1 rows
// (byte-for-byte the values of this package's variables) plus post-2014
// extension entries.
//
//go:embed builtin.json
var builtinJSON []byte

var (
	builtinOnce sync.Once
	builtin     *Catalog
)

// Builtin returns the embedded default catalog. The first call parses and
// validates the embedded bytes; a defect there is a build error, so it
// panics (make catalogcheck and the package tests guard it).
func Builtin() *Catalog {
	builtinOnce.Do(func() {
		c, err := ParseCatalog(builtinJSON)
		if err != nil {
			panic("tech: embedded builtin catalog invalid: " + err.Error())
		}
		builtin = c
	})
	return builtin
}

// BuiltinJSON returns a copy of the embedded catalog file, for tooling that
// wants to write it out as a user-editable starting point.
func BuiltinJSON() []byte { return append([]byte(nil), builtinJSON...) }

// ParseCatalog parses and validates a catalog file. Every defect — wrong
// format line, missing name/version, duplicate or colliding names, unknown
// classes, and non-finite/negative/zero-latency parameter values — returns
// a typed *CatalogError (wrapping a *ValueError for value defects).
func ParseCatalog(b []byte) (*Catalog, error) {
	var raw catalogJSON
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, &CatalogError{Reason: "invalid JSON", Err: err}
	}
	if raw.Format != CatalogFormat {
		return nil, &CatalogError{Reason: fmt.Sprintf("format %q, want %q", raw.Format, CatalogFormat)}
	}
	if raw.Name == "" {
		return nil, &CatalogError{Reason: "missing catalog name"}
	}
	if raw.Version == "" {
		return nil, &CatalogError{Reason: "missing catalog version"}
	}
	entries := make([]Entry, len(raw.Techs))
	for i, e := range raw.Techs {
		entries[i] = Entry{
			Tech: Tech{
				Name: e.Name, ReadNS: e.ReadNS, WriteNS: e.WriteNS,
				ReadPJPerBit: e.ReadPJPerBit, WritePJPerBit: e.WritePJPerBit,
				StaticWPerGB: e.StaticWPerGB, StaticWFixed: e.StaticWFixed,
				NonVolatile: e.NonVolatile,
			},
			Class: e.Class, Aliases: e.Aliases, Source: e.Source, Extension: e.Extension,
		}
	}
	return NewCatalog(raw.Name, raw.Version, entries)
}

// LoadCatalog reads and parses a catalog file from disk.
func LoadCatalog(path string) (*Catalog, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tech: catalog: %w", err)
	}
	c, err := ParseCatalog(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// LoadCatalogOrBuiltin resolves a CLI -catalog flag: an empty path selects
// the embedded builtin catalog, anything else loads from disk.
func LoadCatalogOrBuiltin(path string) (*Catalog, error) {
	if path == "" {
		return Builtin(), nil
	}
	return LoadCatalog(path)
}

// NewCatalog validates the entries and assembles a catalog. The entry order
// is preserved (it is presentation order for Table 1 style listings) and
// participates in the content hash.
func NewCatalog(name, version string, entries []Entry) (*Catalog, error) {
	if len(entries) == 0 {
		return nil, &CatalogError{Reason: "no technologies"}
	}
	c := &Catalog{
		name:    name,
		version: version,
		entries: append([]Entry(nil), entries...),
		byName:  make(map[string]Entry, len(entries)*2),
	}
	for _, e := range c.entries {
		if err := e.Tech.Validate(); err != nil {
			return nil, &CatalogError{Entry: e.Tech.Name, Err: err}
		}
		if !validClasses[e.Class] {
			return nil, &CatalogError{Entry: e.Tech.Name,
				Reason: fmt.Sprintf("unknown class %q (want sram, dram, llc, or nvm)", e.Class)}
		}
		for _, n := range append([]string{e.Tech.Name}, e.Aliases...) {
			key := strings.ToLower(n)
			if prev, dup := c.byName[key]; dup {
				return nil, &CatalogError{Entry: e.Tech.Name,
					Reason: fmt.Sprintf("name %q collides with entry %s", n, prev.Tech.Name)}
			}
			c.byName[key] = e
		}
	}
	c.hash = hashEntries(name, version, c.entries)
	return c, nil
}

// hashEntries computes the catalog content hash: SHA-256 over a
// deterministic serialization of the identity and every entry field, so any
// edit — a latency, an alias, a class, even a source note — yields a new
// hash. The serve layer folds this hash into its result-cache, profile, and
// persistent-store keys; that is what makes a parameter edit a guaranteed
// cache miss.
func hashEntries(name, version string, entries []Entry) string {
	h := sha256.New()
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fmt.Fprintf(h, "catalog\x00%s\x00%s\x00", name, version)
	for _, e := range entries {
		fmt.Fprintf(h, "entry\x00%s\x00%s\x00%s\x00%s\x00%s\x00%s\x00%s\x00%s\x00%t\x00%t\x00%s\x00%s\x00",
			e.Tech.Name, e.Class,
			g(e.Tech.ReadNS), g(e.Tech.WriteNS),
			g(e.Tech.ReadPJPerBit), g(e.Tech.WritePJPerBit),
			g(e.Tech.StaticWPerGB), g(e.Tech.StaticWFixed),
			e.Tech.NonVolatile, e.Extension,
			strings.Join(e.Aliases, ","), e.Source)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Name returns the catalog's declared name.
func (c *Catalog) Name() string { return c.name }

// Version returns the catalog's declared content version string.
func (c *Catalog) Version() string { return c.version }

// Hash returns the catalog's SHA-256 content hash (hex). Two catalogs hash
// equal exactly when every entry field, the name, and the version match.
func (c *Catalog) Hash() string { return c.hash }

// Len returns the number of entries.
func (c *Catalog) Len() int { return len(c.entries) }

// Entries returns the catalog rows in file order (a copy).
func (c *Catalog) Entries() []Entry { return append([]Entry(nil), c.entries...) }

// Entry looks an entry up by case-insensitive name or alias.
func (c *Catalog) Entry(name string) (Entry, bool) {
	e, ok := c.byName[strings.ToLower(name)]
	return e, ok
}

// Tech resolves a technology by case-insensitive name or alias. Unknown
// names return a *UnknownError carrying the catalog's canonical names.
func (c *Catalog) Tech(name string) (Tech, error) {
	e, ok := c.Entry(name)
	if !ok {
		return Tech{}, &UnknownError{Name: name, Known: c.TechNames()}
	}
	return e.Tech, nil
}

// MustTech resolves a technology that the caller knows is present (e.g. the
// builtin catalog's DRAM). It panics on unknown names.
func (c *Catalog) MustTech(name string) Tech {
	t, err := c.Tech(name)
	if err != nil {
		panic(err)
	}
	return t
}

// TechNames returns the canonical entry names, sorted.
func (c *Catalog) TechNames() []string {
	out := make([]string, len(c.entries))
	for i, e := range c.entries {
		out[i] = e.Tech.Name
	}
	sort.Strings(out)
	return out
}

// Class returns every technology of the given class in file order,
// including extension entries.
func (c *Catalog) Class(class string) []Tech {
	var out []Tech
	for _, e := range c.entries {
		if e.Class == class {
			out = append(out, e.Tech)
		}
	}
	return out
}

// NVMs returns the non-extension NVM candidates — for the builtin catalog,
// the paper's PCM/STT-RAM/FeRAM trio. Extension NVMs resolve by name (and
// appear in Class(ClassNVM)) but stay out of the paper-reproduction default
// sweeps.
func (c *Catalog) NVMs() []Tech { return c.classDefaults(ClassNVM) }

// LLCs returns the non-extension fourth-level-cache technologies — for the
// builtin catalog, eDRAM and HMC.
func (c *Catalog) LLCs() []Tech { return c.classDefaults(ClassLLC) }

// classDefaults returns the non-extension members of a class in file order.
func (c *Catalog) classDefaults(class string) []Tech {
	var out []Tech
	for _, e := range c.entries {
		if e.Class == class && !e.Extension {
			out = append(out, e.Tech)
		}
	}
	return out
}

// Extensions returns the extension entries in file order.
func (c *Catalog) Extensions() []Entry {
	var out []Entry
	for _, e := range c.entries {
		if e.Extension {
			out = append(out, e)
		}
	}
	return out
}

// WithEntries derives a catalog with the given entries replacing same-named
// entries or appending new ones; the result re-validates and re-hashes. The
// receiver is unchanged. The derived catalog's version gains a "+overrides"
// suffix so responses and logs show it is no longer the pristine file.
func (c *Catalog) WithEntries(entries ...Entry) (*Catalog, error) {
	if len(entries) == 0 {
		return c, nil
	}
	merged := append([]Entry(nil), c.entries...)
	for _, e := range entries {
		replaced := false
		for i := range merged {
			if strings.EqualFold(merged[i].Tech.Name, e.Tech.Name) {
				merged[i] = e
				replaced = true
				break
			}
		}
		if !replaced {
			merged = append(merged, e)
		}
	}
	version := c.version
	if !strings.HasSuffix(version, "+overrides") {
		version += "+overrides"
	}
	return NewCatalog(c.name, version, merged)
}
