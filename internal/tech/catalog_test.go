package tech

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestBuiltinMatchesPackageVars pins the embedded catalog to this package's
// Table 1 variables, field for field: the data file and the historical
// hardcoded path must be byte-for-byte the same characterization.
func TestBuiltinMatchesPackageVars(t *testing.T) {
	cases := []struct {
		name string
		want Tech
	}{
		{"DRAM", DRAM}, {"RAM", DRAM}, {"PCM", PCM}, {"STTRAM", STTRAM},
		{"FeRAM", FeRAM}, {"eDRAM", EDRAM}, {"HMC", HMC},
		{"SRAM-L1", SRAML1}, {"SRAM-L2", SRAML2}, {"SRAM-L3", SRAML3},
	}
	cat := Builtin()
	for _, c := range cases {
		got, err := cat.Tech(c.name)
		if err != nil {
			t.Errorf("builtin catalog missing %s: %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("builtin %s = %+v, want package var %+v", c.name, got, c.want)
		}
	}
}

// TestBuiltinClassSetsMatchPackageSets pins the catalog's class-derived
// default sweep sets to the package-level NVMs/LLCs lists.
func TestBuiltinClassSetsMatchPackageSets(t *testing.T) {
	cat := Builtin()
	if got, want := cat.NVMs(), NVMs(); !reflect.DeepEqual(got, want) {
		t.Errorf("builtin NVMs() = %v, want %v", got, want)
	}
	if got, want := cat.LLCs(), LLCs(); !reflect.DeepEqual(got, want) {
		t.Errorf("builtin LLCs() = %v, want %v", got, want)
	}
	if got := cat.Class(ClassSRAM); len(got) != 3 {
		t.Errorf("builtin SRAM class = %v, want the L1/L2/L3 prefix trio", got)
	}
}

// TestBuiltinExtensions checks the post-2014 entries: present, marked as
// extensions, non-volatile NVM-class, valid, and excluded from the
// paper-default NVM sweep set.
func TestBuiltinExtensions(t *testing.T) {
	cat := Builtin()
	for _, name := range []string{"RTM", "FeFET", "STTRAM-2024", "ReRAM"} {
		e, ok := cat.Entry(name)
		if !ok {
			t.Errorf("builtin catalog missing post-2014 entry %s", name)
			continue
		}
		if !e.Extension || e.Class != ClassNVM || !e.Tech.NonVolatile {
			t.Errorf("%s: extension=%t class=%q non_volatile=%t, want extension nvm non-volatile",
				name, e.Extension, e.Class, e.Tech.NonVolatile)
		}
		if err := e.Tech.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		for _, def := range cat.NVMs() {
			if def.Name == name {
				t.Errorf("%s leaked into the paper-default NVM sweep set", name)
			}
		}
	}
	if _, err := cat.Tech("Racetrack"); err != nil {
		t.Errorf("RTM alias Racetrack: %v", err)
	}
}

// TestNewCustomRejections exercises every malformed-value class the loader
// and NewCustom must reject with a typed *ValueError: NaN, both infinities,
// zero and negative latencies, negative energy, negative static power.
func TestNewCustomRejections(t *testing.T) {
	good := Tech{Name: "X", ReadNS: 1, WriteNS: 2, ReadPJPerBit: 3, WritePJPerBit: 4}
	if _, err := NewCustom(good); err != nil {
		t.Fatalf("valid tech rejected: %v", err)
	}
	cases := []struct {
		label  string
		mutate func(*Tech)
		field  string
	}{
		{"nan read latency", func(c *Tech) { c.ReadNS = math.NaN() }, "read_ns"},
		{"+inf write latency", func(c *Tech) { c.WriteNS = math.Inf(1) }, "write_ns"},
		{"-inf read latency", func(c *Tech) { c.ReadNS = math.Inf(-1) }, "read_ns"},
		{"zero read latency", func(c *Tech) { c.ReadNS = 0 }, "read_ns"},
		{"zero write latency", func(c *Tech) { c.WriteNS = 0 }, "write_ns"},
		{"negative write latency", func(c *Tech) { c.WriteNS = -3 }, "write_ns"},
		{"nan read energy", func(c *Tech) { c.ReadPJPerBit = math.NaN() }, "read_pj_per_bit"},
		{"negative write energy", func(c *Tech) { c.WritePJPerBit = -0.1 }, "write_pj_per_bit"},
		{"+inf write energy", func(c *Tech) { c.WritePJPerBit = math.Inf(1) }, "write_pj_per_bit"},
		{"negative static per GB", func(c *Tech) { c.StaticWPerGB = -1 }, "static_w_per_gb"},
		{"nan static fixed", func(c *Tech) { c.StaticWFixed = math.NaN() }, "static_w_fixed"},
	}
	for _, c := range cases {
		bad := good
		c.mutate(&bad)
		_, err := NewCustom(bad)
		if err == nil {
			t.Errorf("%s: accepted", c.label)
			continue
		}
		var ve *ValueError
		if !errors.As(err, &ve) {
			t.Errorf("%s: error %T (%v), want *ValueError", c.label, err, err)
			continue
		}
		if ve.Field != c.field {
			t.Errorf("%s: field %q, want %q", c.label, ve.Field, c.field)
		}
		if ve.Tech != "X" {
			t.Errorf("%s: tech %q, want X", c.label, ve.Tech)
		}
		// The catalog loader funnels through the same validation.
		if _, cerr := NewCatalog("t", "v", []Entry{{Tech: bad, Class: ClassNVM}}); cerr == nil {
			t.Errorf("%s: catalog accepted the entry", c.label)
		} else if !errors.As(cerr, &ve) {
			t.Errorf("%s: catalog error %v does not wrap *ValueError", c.label, cerr)
		}
	}
}

// TestParseCatalogStructuralErrors covers file-level defects: format line,
// identity fields, unknown classes, duplicate names, alias collisions,
// unknown JSON fields, and in-file zero latencies.
func TestParseCatalogStructuralErrors(t *testing.T) {
	cases := []struct {
		label, body, want string
	}{
		{"bad format", `{"format":"hybridmem-catalog/999","name":"x","version":"1","techs":[]}`, "format"},
		{"missing name", `{"format":"hybridmem-catalog/1","version":"1","techs":[{"name":"A","class":"nvm","read_ns":1,"write_ns":1,"read_pj_per_bit":1,"write_pj_per_bit":1}]}`, "name"},
		{"missing version", `{"format":"hybridmem-catalog/1","name":"x","techs":[{"name":"A","class":"nvm","read_ns":1,"write_ns":1,"read_pj_per_bit":1,"write_pj_per_bit":1}]}`, "version"},
		{"no techs", `{"format":"hybridmem-catalog/1","name":"x","version":"1","techs":[]}`, "no technologies"},
		{"unknown class", `{"format":"hybridmem-catalog/1","name":"x","version":"1","techs":[{"name":"A","class":"quantum","read_ns":1,"write_ns":1,"read_pj_per_bit":1,"write_pj_per_bit":1}]}`, "class"},
		{"zero latency", `{"format":"hybridmem-catalog/1","name":"x","version":"1","techs":[{"name":"A","class":"nvm","read_ns":0,"write_ns":1,"read_pj_per_bit":1,"write_pj_per_bit":1}]}`, "read_ns"},
		{"negative energy", `{"format":"hybridmem-catalog/1","name":"x","version":"1","techs":[{"name":"A","class":"nvm","read_ns":1,"write_ns":1,"read_pj_per_bit":-1,"write_pj_per_bit":1}]}`, "read_pj_per_bit"},
		{"duplicate name", `{"format":"hybridmem-catalog/1","name":"x","version":"1","techs":[{"name":"A","class":"nvm","read_ns":1,"write_ns":1,"read_pj_per_bit":1,"write_pj_per_bit":1},{"name":"a","class":"nvm","read_ns":1,"write_ns":1,"read_pj_per_bit":1,"write_pj_per_bit":1}]}`, "collides"},
		{"alias collision", `{"format":"hybridmem-catalog/1","name":"x","version":"1","techs":[{"name":"A","class":"nvm","read_ns":1,"write_ns":1,"read_pj_per_bit":1,"write_pj_per_bit":1},{"name":"B","class":"nvm","aliases":["A"],"read_ns":1,"write_ns":1,"read_pj_per_bit":1,"write_pj_per_bit":1}]}`, "collides"},
		{"unknown field", `{"format":"hybridmem-catalog/1","name":"x","version":"1","techs":[{"name":"A","class":"nvm","read_ns":1,"write_ns":1,"read_pj_per_bit":1,"write_pj_per_bit":1,"write_mj":9}]}`, "unknown field"},
	}
	for _, c := range cases {
		_, err := ParseCatalog([]byte(c.body))
		if err == nil {
			t.Errorf("%s: accepted", c.label)
			continue
		}
		var ce *CatalogError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %T (%v), want *CatalogError", c.label, err, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.label, err, c.want)
		}
	}
}

// TestCatalogHashSensitivity: the same bytes hash identically across
// parses, and any value edit — or a WithEntries override — changes the hash.
func TestCatalogHashSensitivity(t *testing.T) {
	a, err := ParseCatalog(BuiltinJSON())
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != Builtin().Hash() {
		t.Error("re-parse of the embedded bytes hashed differently")
	}
	faster := Builtin().MustTech("PCM")
	faster.WriteNS = 50
	edited, err := Builtin().WithEntries(Entry{Tech: faster, Class: ClassNVM, Source: "edited"})
	if err != nil {
		t.Fatal(err)
	}
	if edited.Hash() == Builtin().Hash() {
		t.Error("editing PCM write_ns did not change the catalog hash")
	}
	if got := edited.MustTech("PCM").WriteNS; got != 50 {
		t.Errorf("override not applied: write_ns = %g", got)
	}
	if Builtin().MustTech("PCM").WriteNS != 100 {
		t.Error("WithEntries mutated the receiver")
	}
	if !strings.HasSuffix(edited.Version(), "+overrides") {
		t.Errorf("derived version %q lacks +overrides marker", edited.Version())
	}
	appended, err := Builtin().WithEntries(Entry{
		Tech:  Tech{Name: "ULTRARAM", ReadNS: 5, WriteNS: 5, ReadPJPerBit: 0.1, WritePJPerBit: 0.1, NonVolatile: true},
		Class: ClassNVM, Extension: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if appended.Hash() == Builtin().Hash() {
		t.Error("appending an entry did not change the catalog hash")
	}
	if _, err := appended.Tech("ultraram"); err != nil {
		t.Errorf("appended entry not resolvable: %v", err)
	}
}

// TestCatalogLookup covers alias and case-insensitive resolution plus the
// typed unknown-name error.
func TestCatalogLookup(t *testing.T) {
	cat := Builtin()
	for _, name := range []string{"DRAM", "dram", "RAM", "ram", "pcm", "Sram-L1"} {
		if _, err := cat.Tech(name); err != nil {
			t.Errorf("Tech(%q): %v", name, err)
		}
	}
	_, err := cat.Tech("flux-capacitor")
	var ue *UnknownError
	if !errors.As(err, &ue) {
		t.Fatalf("unknown lookup error %T (%v), want *UnknownError", err, err)
	}
	if ue.Name != "flux-capacitor" || len(ue.Known) == 0 {
		t.Errorf("UnknownError = %+v", ue)
	}
}
