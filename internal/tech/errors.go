package tech

import (
	"fmt"
	"strings"
)

// ValueError reports one invalid numeric parameter of a technology: a
// non-finite, negative, or (for latencies) zero value that would otherwise
// flow silently into the AMAT and energy math. Field uses the catalog file's
// JSON names ("read_ns", "write_pj_per_bit", ...) so callers can surface
// machine-readable field paths.
type ValueError struct {
	// Tech names the offending technology (may be empty for an unnamed
	// custom entry).
	Tech string
	// Field is the JSON field name of the invalid parameter.
	Field string
	// Value is the rejected value.
	Value float64
	// Reason says what the field requires ("must be finite and > 0").
	Reason string
}

// Error implements the error interface.
func (e *ValueError) Error() string {
	name := e.Tech
	if name == "" {
		name = "<unnamed>"
	}
	return fmt.Sprintf("tech %s: %s = %g %s", name, e.Field, e.Value, e.Reason)
}

// UnknownError reports a lookup of a technology name that the catalog does
// not define.
type UnknownError struct {
	// Name is the unknown name as given.
	Name string
	// Known lists the catalog's canonical names.
	Known []string
}

// Error implements the error interface.
func (e *UnknownError) Error() string {
	return fmt.Sprintf("tech: unknown technology %q (known: %s)", e.Name, strings.Join(e.Known, ", "))
}

// CatalogError reports a structural defect in a catalog file: a bad format
// line, a duplicate name, an unknown class, or an entry-level value error.
type CatalogError struct {
	// Entry names the offending entry ("" for file-level defects).
	Entry string
	// Reason explains the defect.
	Reason string
	// Err is the underlying error, when one exists (e.g. a *ValueError).
	Err error
}

// Error implements the error interface.
func (e *CatalogError) Error() string {
	msg := "tech: catalog"
	if e.Entry != "" {
		msg += " entry " + e.Entry
	}
	if e.Reason != "" {
		msg += ": " + e.Reason
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying error for errors.As/Is.
func (e *CatalogError) Unwrap() error { return e.Err }
