// Package workload defines the benchmark workloads of the paper's Section
// IV.B and the machinery they share.
//
// The paper drives its simulator with PEBIL-instrumented binaries: NPB BT,
// SP, and CG; CORAL Graph500, Hashing, and AMG2013; and the Velvet genome
// assembler. This package reproduces each as an instrumented Go kernel: the
// kernel performs the benchmark's real computation over data laid out in a
// simulated virtual address space (an Arena) and emits every significant
// memory reference to a trace.Sink as it executes — online, exactly like the
// paper's framework, with no stored trace.
//
// Each workload is deterministic for a given configuration, so re-running
// one regenerates an identical reference stream; the experiment harness
// relies on this to compare designs on equal footing.
package workload

import (
	"fmt"
	"time"

	"hybridmem/internal/trace"
)

// Workload is one benchmark: metadata plus a deterministic kernel that
// streams its memory references into a sink while it computes.
type Workload interface {
	// Name returns the benchmark name (e.g. "BT", "Graph500").
	Name() string
	// Suite returns the originating suite ("NPB", "CORAL", "Application").
	Suite() string
	// Footprint returns the total bytes of simulated address space the
	// kernel touches.
	Footprint() uint64
	// RefTime returns the paper's Table 4 reference-system execution
	// time, used as T_ref in equation (1). Note the paper's accounting:
	// static energy is charged over the full Table 4 runtime while
	// dynamic energy comes from the reduced-iteration simulated stream;
	// this reproduction follows the same convention (see EXPERIMENTS.md).
	RefTime() time.Duration
	// Regions returns the named address regions of the workload's data
	// structures; the NDM oracle partitions over these.
	Regions() []Region
	// Run executes the kernel, emitting references into sink. Run may be
	// called multiple times; every call emits the identical stream.
	Run(sink trace.Sink)
}

// Options configures workload sizing.
type Options struct {
	// Scale divides the paper's Table 4 footprints (power of two; see
	// package design for the co-scaling rationale). Zero means
	// design.DefaultScale.
	Scale uint64
	// Iters overrides the number of outer iterations (solver iterations,
	// BFS roots, V-cycles...). Zero means each workload's default. The
	// paper likewise reduced iteration counts "to keep the simulation
	// time within reasonable limits".
	Iters int
}

// scaleOrDefault resolves the effective scale.
func (o Options) scaleOrDefault() uint64 {
	if o.Scale == 0 {
		return 64
	}
	return o.Scale
}

// itersOrDefault resolves the effective iteration count.
func (o Options) itersOrDefault(def int) int {
	if o.Iters <= 0 {
		return def
	}
	return o.Iters
}

// Region is a named, contiguous span of the simulated virtual address space
// holding one of a workload's data structures.
type Region struct {
	Name string
	Base uint64
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool { return addr >= r.Base && addr < r.End() }

// RegionError reports a reference outside a workload region — a malformed
// design point or kernel bug that would silently corrupt placement
// experiments. Region.Addr panics with a *RegionError; harness boundaries
// (exp.ProfileWorkloadOpts, exp.EvaluateCtx) recover it into a typed error
// so one request fails instead of the process.
type RegionError struct {
	// Region is the name of the region the offset missed.
	Region string
	// Offset is the out-of-bounds byte offset.
	Offset uint64
	// Size is the region's size in bytes.
	Size uint64
}

// Error implements the error interface.
func (e *RegionError) Error() string {
	return fmt.Sprintf("workload: offset %d out of region %s (size %d)", e.Offset, e.Region, e.Size)
}

// Addr returns the address at the given byte offset. An out-of-bounds
// offset panics with a typed *RegionError (see RegionError for how the
// harness converts it into a per-request failure).
func (r Region) Addr(off uint64) uint64 {
	if off >= r.Size {
		panic(&RegionError{Region: r.Name, Offset: off, Size: r.Size})
	}
	return r.Base + off
}

// Idx returns the address of element i of an array of elemSize-byte
// elements based at the region start.
func (r Region) Idx(i, elemSize uint64) uint64 { return r.Addr(i * elemSize) }

// String formats the region.
func (r Region) String() string {
	return fmt.Sprintf("%s@[%#x,%#x) (%d bytes)", r.Name, r.Base, r.End(), r.Size)
}

// pageAlign is the alignment of arena allocations. Distinct structures live
// on distinct pages, like distinct mmap'd allocations in a real process.
const pageAlign = 4096

// Arena lays out a workload's simulated virtual address space. The zero
// value allocates from a non-zero base (so that address 0 is never valid).
type Arena struct {
	next    uint64
	regions []Region
}

// Alloc reserves size bytes under the given name, page-aligned, and returns
// the region.
func (a *Arena) Alloc(name string, size uint64) Region {
	if a.next == 0 {
		a.next = 1 << 20 // leave the first MB unmapped, like a real process
	}
	if size == 0 {
		size = 1
	}
	base := a.next
	r := Region{Name: name, Base: base, Size: size}
	a.regions = append(a.regions, r)
	a.next = (base + size + pageAlign - 1) &^ (pageAlign - 1)
	// Guard page between structures.
	a.next += pageAlign
	return r
}

// Regions returns all allocated regions in allocation order.
func (a *Arena) Regions() []Region { return append([]Region(nil), a.regions...) }

// Footprint returns the total bytes allocated (excluding alignment gaps).
func (a *Arena) Footprint() uint64 {
	var total uint64
	for _, r := range a.regions {
		total += r.Size
	}
	return total
}

// Mem emits references for a kernel: fixed-size load/store helpers for the
// common 8-byte (float64/int64) and 4-byte (int32) element sizes over a
// batching emitter, so kernels deliver references to the simulator
// trace.DefaultBatchRefs at a time instead of one interface call each. Mem
// is a value type sharing one buffer; kernels pass it freely to helper
// functions and call Flush once when their stream ends.
type Mem struct {
	b *trace.Batcher
}

// NewMem returns an emitter delivering batches into sink.
func NewMem(sink trace.Sink) Mem { return Mem{b: trace.NewBatcher(sink, 0)} }

// Flush drains buffered references downstream. It intentionally does not
// flush the sink itself: draining simulator state (dirty cache lines) is the
// profiler's decision, made after the kernel finishes.
func (m Mem) Flush() { m.b.Drain() }

// Load8 emits an 8-byte load at addr.
func (m Mem) Load8(addr uint64) { m.b.Access(trace.Ref{Addr: addr, Size: 8, Kind: trace.Load}) }

// Store8 emits an 8-byte store at addr.
func (m Mem) Store8(addr uint64) { m.b.Access(trace.Ref{Addr: addr, Size: 8, Kind: trace.Store}) }

// Load4 emits a 4-byte load at addr.
func (m Mem) Load4(addr uint64) { m.b.Access(trace.Ref{Addr: addr, Size: 4, Kind: trace.Load}) }

// Store4 emits a 4-byte store at addr.
func (m Mem) Store4(addr uint64) { m.b.Access(trace.Ref{Addr: addr, Size: 4, Kind: trace.Store}) }

// Load1 emits a 1-byte load at addr.
func (m Mem) Load1(addr uint64) { m.b.Access(trace.Ref{Addr: addr, Size: 1, Kind: trace.Load}) }

// Store1 emits a 1-byte store at addr.
func (m Mem) Store1(addr uint64) { m.b.Access(trace.Ref{Addr: addr, Size: 1, Kind: trace.Store}) }

// LoadN emits an n-byte load at addr.
func (m Mem) LoadN(addr, n uint64) {
	m.b.Access(trace.Ref{Addr: addr, Size: uint32(n), Kind: trace.Load})
}

// StoreN emits an n-byte store at addr.
func (m Mem) StoreN(addr, n uint64) {
	m.b.Access(trace.Ref{Addr: addr, Size: uint32(n), Kind: trace.Store})
}
