// Package amg implements the CORAL AMG2013 workload: a multigrid solver
// for linear systems on 3-D grids ("updating points of the grid according
// to a fixed pattern"). The reproduction runs geometric multigrid V-cycles
// with red-black Gauss-Seidel smoothing on a 7-point Poisson stencil; the
// multi-resolution grid hierarchy reproduces AMG's mix of large streaming
// sweeps at fine levels and small working sets at coarse levels.
package amg

import (
	"math"
	"time"

	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// level is one grid level of the multigrid hierarchy.
type level struct {
	n  int // interior points per dimension
	u  []float64
	f  []float64
	r  []float64
	uR workload.Region
	fR workload.Region
	rR workload.Region
}

// Workload is the AMG workload.
type Workload struct {
	levels []*level
	cycles int
	arena  workload.Arena
	// residualNorm records the final residual of the last Run.
	residualNorm float64
}

// bytesPerCell is the finest-level storage per cell: u, f, r float64s.
const bytesPerCell = 3 * 8

// New builds the workload. Table 4: 3GB/core footprint, 156.3s reference
// time.
func New(opts workload.Options) *Workload {
	scale := opts.Scale
	if scale == 0 {
		scale = 64
	}
	footprint := uint64(3) << 30 / scale
	// The level hierarchy totals ~1.14x the finest level.
	n := int(math.Cbrt(float64(footprint) / (bytesPerCell * 1.15)))
	if n < 16 {
		n = 16
	}
	w := &Workload{cycles: 1}
	if opts.Iters > 0 {
		w.cycles = opts.Iters
	}
	for n >= 4 {
		l := &level{n: n}
		cells := uint64(n) * uint64(n) * uint64(n)
		l.u = make([]float64, cells)
		l.f = make([]float64, cells)
		l.r = make([]float64, cells)
		l.uR = w.arena.Alloc("u", cells*8)
		l.fR = w.arena.Alloc("f", cells*8)
		l.rR = w.arena.Alloc("r", cells*8)
		w.levels = append(w.levels, l)
		n /= 2
	}
	// Deterministic right-hand side on the finest level.
	fine := w.levels[0]
	for i := range fine.f {
		fine.f[i] = math.Sin(float64(i%97)) * 0.1
	}
	return w
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "AMG2013" }

// Suite implements workload.Workload.
func (w *Workload) Suite() string { return "CORAL" }

// Footprint implements workload.Workload.
func (w *Workload) Footprint() uint64 { return w.arena.Footprint() }

// RefTime implements workload.Workload.
func (w *Workload) RefTime() time.Duration { return 156300 * time.Millisecond }

// Regions implements workload.Workload.
func (w *Workload) Regions() []workload.Region { return w.arena.Regions() }

// ResidualNorm returns the final finest-level residual of the last Run.
func (w *Workload) ResidualNorm() float64 { return w.residualNorm }

// Levels returns the number of grid levels.
func (w *Workload) Levels() int { return len(w.levels) }

// idx maps (i,j,k) with k contiguous.
func (l *level) idx(i, j, k int) int { return (i*l.n+j)*l.n + k }

// Run executes the configured number of V-cycles, emitting references.
func (w *Workload) Run(sink trace.Sink) {
	mem := workload.NewMem(sink)
	defer mem.Flush()
	// Reset solution so every Run emits an identical stream.
	for _, l := range w.levels {
		for i := range l.u {
			l.u[i] = 0
		}
	}
	for c := 0; c < w.cycles; c++ {
		w.vcycle(mem, 0)
	}
	w.residualNorm = w.residual(mem, w.levels[0])
}

// vcycle performs one V-cycle starting at level d.
func (w *Workload) vcycle(mem workload.Mem, d int) {
	l := w.levels[d]
	if d == len(w.levels)-1 {
		// Coarsest level: smooth hard instead of a direct solve.
		for s := 0; s < 8; s++ {
			w.smooth(mem, l)
		}
		return
	}
	w.smooth(mem, l) // pre-smooth
	w.residual(mem, l)
	w.restrictTo(mem, l, w.levels[d+1])
	w.vcycle(mem, d+1)
	w.prolongAdd(mem, w.levels[d+1], l)
	w.smooth(mem, l) // post-smooth
}

// smooth performs one red-black Gauss-Seidel sweep of the 7-point Poisson
// operator. Contiguous (k±1) neighbors coalesce with the center load into
// one 24-byte reference; the strided neighbors are separate 8-byte loads.
func (w *Workload) smooth(mem workload.Mem, l *level) {
	n := l.n
	for color := 0; color < 2; color++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				k0 := 1 + (i+j+color)%2
				for k := k0; k < n-1; k += 2 {
					c := l.idx(i, j, k)
					mem.LoadN(l.uR.Idx(uint64(c-1), 8), 24) // u[k-1..k+1]
					mem.Load8(l.uR.Idx(uint64(l.idx(i, j-1, k)), 8))
					mem.Load8(l.uR.Idx(uint64(l.idx(i, j+1, k)), 8))
					mem.Load8(l.uR.Idx(uint64(l.idx(i-1, j, k)), 8))
					mem.Load8(l.uR.Idx(uint64(l.idx(i+1, j, k)), 8))
					mem.Load8(l.fR.Idx(uint64(c), 8))
					l.u[c] = (l.u[c-1] + l.u[c+1] +
						l.u[l.idx(i, j-1, k)] + l.u[l.idx(i, j+1, k)] +
						l.u[l.idx(i-1, j, k)] + l.u[l.idx(i+1, j, k)] +
						l.f[c]) / 6
					mem.Store8(l.uR.Idx(uint64(c), 8))
				}
			}
		}
	}
}

// residual computes r = f - A·u and returns its max-norm.
func (w *Workload) residual(mem workload.Mem, l *level) float64 {
	n := l.n
	var norm float64
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			for k := 1; k < n-1; k++ {
				c := l.idx(i, j, k)
				mem.LoadN(l.uR.Idx(uint64(c-1), 8), 24)
				mem.Load8(l.uR.Idx(uint64(l.idx(i, j-1, k)), 8))
				mem.Load8(l.uR.Idx(uint64(l.idx(i, j+1, k)), 8))
				mem.Load8(l.uR.Idx(uint64(l.idx(i-1, j, k)), 8))
				mem.Load8(l.uR.Idx(uint64(l.idx(i+1, j, k)), 8))
				mem.Load8(l.fR.Idx(uint64(c), 8))
				au := 6*l.u[c] - l.u[c-1] - l.u[c+1] -
					l.u[l.idx(i, j-1, k)] - l.u[l.idx(i, j+1, k)] -
					l.u[l.idx(i-1, j, k)] - l.u[l.idx(i+1, j, k)]
				l.r[c] = l.f[c] - au
				mem.Store8(l.rR.Idx(uint64(c), 8))
				if a := math.Abs(l.r[c]); a > norm {
					norm = a
				}
			}
		}
	}
	return norm
}

// restrictTo computes the coarse right-hand side by full-weighting: each
// coarse cell averages its 2x2x2 fine children's residuals, scaled by 4 for
// the doubled grid spacing of the unscaled 7-point stencil. The 8-child
// gather reproduces AMG's strided fine-to-coarse access pattern.
func (w *Workload) restrictTo(mem workload.Mem, fine, coarse *level) {
	cn := coarse.n
	clamp := func(v int) int {
		if v >= fine.n {
			return fine.n - 1
		}
		return v
	}
	for i := 0; i < cn; i++ {
		for j := 0; j < cn; j++ {
			for k := 0; k < cn; k++ {
				var sum float64
				for di := 0; di < 2; di++ {
					fi := clamp(i*2 + di)
					for dj := 0; dj < 2; dj++ {
						fj := clamp(j*2 + dj)
						fk := clamp(k * 2)
						fc := fine.idx(fi, fj, fk)
						// The two k-children are contiguous: one
						// 16-byte load covers both.
						mem.LoadN(fine.rR.Idx(uint64(fc), 8), 16)
						sum += fine.r[fc] + fine.r[fine.idx(fi, fj, clamp(k*2+1))]
					}
				}
				cc := coarse.idx(i, j, k)
				coarse.f[cc] = 4 * sum / 8
				coarse.u[cc] = 0
				mem.Store8(coarse.fR.Idx(uint64(cc), 8))
				mem.Store8(coarse.uR.Idx(uint64(cc), 8))
			}
		}
	}
}

// prolongAdd interpolates the coarse correction back onto the fine grid
// (piecewise-constant prolongation) and adds it to the fine solution.
func (w *Workload) prolongAdd(mem workload.Mem, coarse, fine *level) {
	fn := fine.n
	cn := coarse.n
	for i := 1; i < fn-1; i++ {
		ci := min(i/2, cn-1)
		for j := 1; j < fn-1; j++ {
			cj := min(j/2, cn-1)
			for k := 1; k < fn-1; k++ {
				ck := min(k/2, cn-1)
				cc := coarse.idx(ci, cj, ck)
				fc := fine.idx(i, j, k)
				mem.Load8(coarse.uR.Idx(uint64(cc), 8))
				mem.Load8(fine.uR.Idx(uint64(fc), 8))
				fine.u[fc] += coarse.u[cc]
				mem.Store8(fine.uR.Idx(uint64(fc), 8))
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
