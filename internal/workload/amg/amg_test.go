package amg

import (
	"math"
	"testing"

	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
	"hybridmem/internal/workload/wltest"
)

var testOpts = workload.Options{Scale: 2048}

func TestConformance(t *testing.T) {
	w := New(testOpts)
	wltest.CheckMetadata(t, w, "CORAL", 3<<30/2048)
	wltest.CheckRefsInRegions(t, w)
	wltest.CheckDeterminism(t, w)
}

func TestLevelHierarchyShape(t *testing.T) {
	w := New(testOpts)
	if w.Levels() < 3 {
		t.Fatalf("only %d grid levels", w.Levels())
	}
	for i := 1; i < len(w.levels); i++ {
		if w.levels[i].n != w.levels[i-1].n/2 {
			t.Fatalf("level %d has n=%d, parent n=%d", i, w.levels[i].n, w.levels[i-1].n)
		}
	}
	if w.levels[len(w.levels)-1].n < 4 {
		t.Fatal("coarsest level too small")
	}
}

// TestVCyclesReduceResidual verifies multigrid actually converges: more
// V-cycles produce a strictly smaller residual.
func TestVCyclesReduceResidual(t *testing.T) {
	one := New(workload.Options{Scale: 4096, Iters: 1})
	one.Run(trace.Null{})
	r1 := one.ResidualNorm()

	four := New(workload.Options{Scale: 4096, Iters: 4})
	four.Run(trace.Null{})
	r4 := four.ResidualNorm()

	if math.IsNaN(r1) || math.IsNaN(r4) {
		t.Fatal("residual is NaN")
	}
	if r1 <= 0 {
		t.Fatalf("one-cycle residual %g should be positive", r1)
	}
	if r4 >= r1 {
		t.Fatalf("4 cycles residual %g not below 1 cycle residual %g", r4, r1)
	}
	if r4 > 0.5*r1 {
		t.Fatalf("multigrid converging too slowly: %g -> %g", r1, r4)
	}
}

// TestRunResetsState verifies repeated runs restart from the same initial
// solution (required for stream determinism).
func TestRunResetsState(t *testing.T) {
	w := New(workload.Options{Scale: 4096})
	w.Run(trace.Null{})
	first := w.ResidualNorm()
	w.Run(trace.Null{})
	if w.ResidualNorm() != first {
		t.Fatalf("residual changed across runs: %g vs %g", first, w.ResidualNorm())
	}
}
