package npb

import (
	"time"

	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// adi is the shared ADI solver behind BT and SP. The two benchmarks differ
// in the bandwidth of the implicit systems solved along grid lines
// (tridiagonal blocks for BT, scalar pentadiagonal for SP); their memory
// behaviour — the property the paper measures — is the same family:
// stencil RHS evaluation, then line sweeps in each of the three dimensions.
type adi struct {
	name    string
	suite   string
	refTime time.Duration
	g       *grid
	iters   int
	// penta selects the pentadiagonal (SP) variant; false is the
	// tridiagonal (BT) variant.
	penta bool
}

// Name implements workload.Workload.
func (a *adi) Name() string { return a.name }

// Suite implements workload.Workload.
func (a *adi) Suite() string { return a.suite }

// Footprint implements workload.Workload.
func (a *adi) Footprint() uint64 { return a.g.footprint() }

// RefTime implements workload.Workload.
func (a *adi) RefTime() time.Duration { return a.refTime }

// Regions implements workload.Workload.
func (a *adi) Regions() []workload.Region { return a.g.regions() }

// Run executes the solver, emitting references online.
func (a *adi) Run(sink trace.Sink) {
	mem := workload.NewMem(sink)
	defer mem.Flush()
	for it := 0; it < a.iters; it++ {
		a.computeRHS(mem)
		a.sweep(mem, 0) // x: stride n² cells
		a.sweep(mem, 1) // y: stride n cells
		a.sweep(mem, 2) // z: contiguous
		a.add(mem)
	}
}

// computeRHS evaluates rhs = forcing + ν·∇²u with a 7-point stencil. Each
// 5-vector moves as one 40-byte reference, modelling the vectorized loads
// of the real solver.
func (a *adi) computeRHS(mem workload.Mem) {
	g := a.g
	n := g.n
	const nu = 0.05
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				c := g.idx(i, j, k)
				mem.LoadN(cellAddr(g.uRegion, c), vecBytes)
				mem.LoadN(cellAddr(g.forcRegion, c), vecBytes)
				for m := 0; m < comps; m++ {
					u := g.u[c*comps+m]
					lap := -6 * u
					lap += a.neighbor(mem, i-1, j, k, m, i == 0)
					lap += a.neighbor(mem, i+1, j, k, m, i == n-1)
					lap += a.neighbor(mem, i, j-1, k, m, j == 0)
					lap += a.neighbor(mem, i, j+1, k, m, j == n-1)
					lap += a.neighbor(mem, i, j, k-1, m, k == 0)
					lap += a.neighbor(mem, i, j, k+1, m, k == n-1)
					// Boundary contributions reuse the center value.
					g.rhs[c*comps+m] = g.forcing[c*comps+m] + nu*lap
				}
				mem.StoreN(cellAddr(g.rhsRegion, c), vecBytes)
			}
		}
	}
}

// neighbor loads the m-th component of a neighboring cell's 5-vector,
// emitting one 40-byte load for the vector the first time the cell is
// touched in this stencil (m == 0). Out-of-range neighbors contribute zero
// and emit nothing (the real code handles boundaries with separate loops).
func (a *adi) neighbor(mem workload.Mem, i, j, k, m int, outOfRange bool) float64 {
	if outOfRange {
		return 0
	}
	g := a.g
	c := g.idx(i, j, k)
	if m == 0 {
		mem.LoadN(cellAddr(g.uRegion, c), vecBytes)
	}
	return g.u[c*comps+m]
}

// sweep performs the implicit line solves along the given dimension
// (0 = x, 1 = y, 2 = z): a Thomas-style forward elimination followed by
// back substitution along every grid line, updating rhs in place. The
// pentadiagonal variant carries one extra super-diagonal term, touching the
// same memory with slightly more arithmetic, as SP does relative to BT.
func (a *adi) sweep(mem workload.Mem, dim int) {
	g := a.g
	n := g.n
	// cp holds the eliminated upper-diagonal coefficients for the line
	// being solved: the solver's scratch, hot in L1.
	cp := make([]float64, n*comps)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			a.solveLine(mem, dim, p, q, cp)
		}
	}
}

// lineIdx returns the cell index of the t-th point of line (p,q) along dim.
func (g *grid) lineIdx(dim, p, q, t int) int {
	switch dim {
	case 0:
		return g.idx(t, p, q)
	case 1:
		return g.idx(p, t, q)
	default:
		return g.idx(p, q, t)
	}
}

// solveLine runs the implicit solve along one grid line.
func (a *adi) solveLine(mem workload.Mem, dim, p, q int, cp []float64) {
	g := a.g
	n := g.n
	// Diagonal dominance keeps the elimination stable; dt scales the
	// off-diagonal coupling.
	const dt = 0.1

	// Forward elimination.
	for t := 0; t < n; t++ {
		c := g.lineIdx(dim, p, q, t)
		mem.LoadN(cellAddr(g.uRegion, c), vecBytes)   // coefficients built from u
		mem.LoadN(cellAddr(g.rhsRegion, c), vecBytes) // current rhs
		for m := 0; m < comps; m++ {
			um := g.u[c*comps+m]
			diag := 1 + 2*dt + 0.01*um*um
			lower := -dt
			upper := -dt
			if a.penta && t >= 2 {
				// Second sub-diagonal term of the pentadiagonal
				// system: couples to t-2 (already eliminated, so
				// it folds into the same update with an extra
				// load of the t-2 rhs handled below).
				lower *= 1.05
			}
			if t > 0 {
				prev := g.lineIdx(dim, p, q, t-1)
				denom := diag - lower*cp[(t-1)*comps+m]
				cp[t*comps+m] = upper / denom
				g.rhs[c*comps+m] = (g.rhs[c*comps+m] - lower*g.rhs[prev*comps+m]) / denom
			} else {
				cp[m] = upper / diag
				g.rhs[c*comps+m] /= diag
			}
		}
		if t > 0 {
			prev := g.lineIdx(dim, p, q, t-1)
			mem.LoadN(cellAddr(g.rhsRegion, prev), vecBytes)
		}
		if a.penta && t >= 2 {
			prev2 := g.lineIdx(dim, p, q, t-2)
			mem.LoadN(cellAddr(g.rhsRegion, prev2), vecBytes)
		}
		mem.StoreN(cellAddr(g.rhsRegion, c), vecBytes)
		mem.StoreN(g.scratchRegion.Idx(uint64(t), comps*8), comps*8)
	}

	// Back substitution.
	for t := n - 2; t >= 0; t-- {
		c := g.lineIdx(dim, p, q, t)
		next := g.lineIdx(dim, p, q, t+1)
		mem.LoadN(cellAddr(g.rhsRegion, next), vecBytes)
		mem.LoadN(g.scratchRegion.Idx(uint64(t), comps*8), comps*8)
		for m := 0; m < comps; m++ {
			g.rhs[c*comps+m] -= cp[t*comps+m] * g.rhs[next*comps+m]
		}
		mem.StoreN(cellAddr(g.rhsRegion, c), vecBytes)
	}
}

// add folds the solved increment back into the solution: u += rhs.
func (a *adi) add(mem workload.Mem) {
	g := a.g
	cells := g.n * g.n * g.n
	for c := 0; c < cells; c++ {
		mem.LoadN(cellAddr(g.uRegion, c), vecBytes)
		mem.LoadN(cellAddr(g.rhsRegion, c), vecBytes)
		for m := 0; m < comps; m++ {
			g.u[c*comps+m] += g.rhs[c*comps+m]
		}
		mem.StoreN(cellAddr(g.uRegion, c), vecBytes)
	}
}

// Checksum exposes the solution checksum for determinism tests.
func (a *adi) Checksum() float64 { return a.g.checksum() }

// table4 reference footprints (bytes) and times, per core.
const gb = 1 << 30

// scaledFootprint converts a Table 4 footprint in gigabytes to scaled bytes.
func scaledFootprint(gigabytes float64, scale uint64) uint64 {
	return uint64(gigabytes*float64(gb)) / scale
}

// NewBT builds the BT workload: Table 4 gives a 1.69GB/core class-D
// footprint and a 36.0s reference time.
func NewBT(opts workload.Options) workload.Workload {
	scale := opts.Scale
	if scale == 0 {
		scale = 64
	}
	footprint := scaledFootprint(1.69, scale)
	n := gridForFootprint(footprint)
	return &adi{
		name:    "BT",
		suite:   "NPB",
		refTime: 36 * time.Second,
		g:       newGrid(n, n),
		iters:   iters(opts, 1),
		penta:   false,
	}
}

// NewSP builds the SP workload (scalar pentadiagonal). The paper's Table 4
// prints the second NPB row as "LU, class C, 0.8GB"; its text and NDM
// discussion use SP. We follow the text and give SP the 0.8GB footprint and
// a 40s reference time (Table 4 leaves the cell blank).
func NewSP(opts workload.Options) workload.Workload {
	scale := opts.Scale
	if scale == 0 {
		scale = 64
	}
	footprint := scaledFootprint(0.8, scale)
	n := gridForFootprint(footprint)
	return &adi{
		name:    "SP",
		suite:   "NPB",
		refTime: 40 * time.Second,
		g:       newGrid(n, n),
		iters:   iters(opts, 1),
		penta:   true,
	}
}

// iters resolves the iteration count.
func iters(opts workload.Options, def int) int {
	if opts.Iters > 0 {
		return opts.Iters
	}
	return def
}
