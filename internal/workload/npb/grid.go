// Package npb implements the NAS Parallel Benchmark workloads the paper
// uses (Section IV.B): BT (block tridiagonal solver), SP (scalar
// pentadiagonal solver), and CG (conjugate gradient with irregular memory
// access). Each kernel performs real arithmetic over a simulated address
// space and streams its memory references online.
//
// BT and SP are alternating-direction-implicit (ADI) solvers over a 3-D
// structured grid with five solution components per cell. The
// reproductions keep the solvers' memory structure — right-hand-side
// stencil evaluation followed by forward-elimination/back-substitution
// sweeps along lines of each dimension, with the large strides that
// x-direction sweeps incur in a z-contiguous layout — while simplifying the
// per-cell 5x5 block algebra of BT to per-component Thomas solves (the
// memory stream is identical in shape; only register-level arithmetic
// differs).
package npb

import (
	"math"

	"hybridmem/internal/workload"
)

// comps is the number of solution components per grid cell (NPB's five
// conservative flow variables).
const comps = 5

// cellBytes is the per-cell storage of the ADI workloads: u, rhs, and
// forcing, each a 5-vector of float64.
const cellBytes = 3 * comps * 8

// grid is a cubic 3-D grid of 5-component cells, with the solution arrays
// and the address regions they simulate.
type grid struct {
	n       int // points per dimension
	u       []float64
	rhs     []float64
	forcing []float64

	arena      workload.Arena
	uRegion    workload.Region
	rhsRegion  workload.Region
	forcRegion workload.Region
	// scratch simulates the per-line solver workspace (the Thomas
	// algorithm's eliminated coefficients); it is tiny and hot.
	scratchRegion workload.Region
}

// gridForFootprint sizes a cubic grid so that the three per-cell arrays
// total approximately footprint bytes, with a floor of 8 points per
// dimension.
func gridForFootprint(footprint uint64) int {
	n := int(math.Cbrt(float64(footprint) / cellBytes))
	if n < 8 {
		n = 8
	}
	return n
}

// newGrid allocates the grid and its address regions.
func newGrid(n, maxLine int) *grid {
	g := &grid{n: n}
	cells := uint64(n) * uint64(n) * uint64(n)
	vec := cells * comps * 8
	g.u = make([]float64, cells*comps)
	g.rhs = make([]float64, cells*comps)
	g.forcing = make([]float64, cells*comps)
	g.uRegion = g.arena.Alloc("u", vec)
	g.rhsRegion = g.arena.Alloc("rhs", vec)
	g.forcRegion = g.arena.Alloc("forcing", vec)
	g.scratchRegion = g.arena.Alloc("scratch", uint64(maxLine)*comps*8)

	// Deterministic, smooth initial condition and forcing term.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				c := g.idx(i, j, k)
				x := float64(i) / float64(n)
				y := float64(j) / float64(n)
				z := float64(k) / float64(n)
				for m := 0; m < comps; m++ {
					g.u[c*comps+m] = 1 + 0.1*float64(m) + x*y + z
					g.forcing[c*comps+m] = math.Sin(3*x) * math.Cos(2*y) * (1 + z)
				}
			}
		}
	}
	return g
}

// idx maps (i,j,k) to the linear cell index; k is the contiguous dimension,
// so x-direction sweeps stride by n² cells, as in a Fortran (5,nz,ny,nx)
// layout traversed along the first grid dimension.
func (g *grid) idx(i, j, k int) int { return (i*g.n+j)*g.n + k }

// cellAddr returns the address of cell c's 5-vector in the given region.
func cellAddr(r workload.Region, c int) uint64 { return r.Idx(uint64(c), comps*8) }

// vecBytes is the size of one cell's 5-component vector.
const vecBytes = comps * 8

// footprint returns the total allocated simulated bytes.
func (g *grid) footprint() uint64 { return g.arena.Footprint() }

// regions returns the grid's address regions.
func (g *grid) regions() []workload.Region { return g.arena.Regions() }

// checksum returns a value derived from the full solution, to keep the
// compiler honest and to let tests assert determinism.
func (g *grid) checksum() float64 {
	var s float64
	for _, v := range g.u {
		s += v
	}
	return s
}
