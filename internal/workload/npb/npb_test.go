package npb

import (
	"math"
	"testing"

	"hybridmem/internal/sparse"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
	"hybridmem/internal/workload/wltest"
)

// testOpts keeps workload tests fast: footprints around 1MB.
var testOpts = workload.Options{Scale: 2048}

func TestBTConformance(t *testing.T) {
	w := NewBT(testOpts)
	wltest.CheckMetadata(t, w, "NPB", scaledFootprint(1.69, 2048))
	wltest.CheckRefsInRegions(t, w)
	wltest.CheckDeterminism(t, w)
}

func TestSPConformance(t *testing.T) {
	w := NewSP(testOpts)
	wltest.CheckMetadata(t, w, "NPB", scaledFootprint(0.8, 2048))
	wltest.CheckRefsInRegions(t, w)
	wltest.CheckDeterminism(t, w)
}

func TestLUConformance(t *testing.T) {
	w := NewLU(testOpts)
	wltest.CheckMetadata(t, w, "NPB", scaledFootprint(0.8, 2048))
	wltest.CheckRefsInRegions(t, w)
	wltest.CheckDeterminism(t, w)
}

// TestLUWavefrontCoversGrid verifies the hyperplane enumeration touches
// every cell exactly once per sweep (stores to rhs: one per cell per sweep
// plus one per cell in computeRHS).
func TestLUWavefrontCoversGrid(t *testing.T) {
	w := NewLU(workload.Options{Scale: 8192}).(*lu)
	n := w.g.n
	cells := uint64(n * n * n)
	var c trace.Counter
	w.Run(&c)
	// Stores: computeRHS (1/cell) + lower sweep (1/cell) + upper sweep
	// (1/cell) + add (1/cell) = 4 per cell.
	if c.Stores != 4*cells {
		t.Fatalf("stores = %d, want %d (4 per cell)", c.Stores, 4*cells)
	}
}

func TestLUSolutionFinite(t *testing.T) {
	w := NewLU(workload.Options{Scale: 8192, Iters: 3}).(*lu)
	w.Run(trace.Null{})
	if s := w.Checksum(); math.IsNaN(s) || math.IsInf(s, 0) {
		t.Fatalf("LU solution diverged: %g", s)
	}
}

func TestCGConformance(t *testing.T) {
	w := NewCG(testOpts)
	wltest.CheckMetadata(t, w, "NPB", scaledFootprint(1.5, 2048))
	wltest.CheckRefsInRegions(t, w)
	wltest.CheckDeterminism(t, w)
}

// TestADISolverReducesResidual verifies the solvers do real numerical work:
// after iterations, the solution changes and remains finite.
func TestADISolverProducesFiniteSolution(t *testing.T) {
	for _, mk := range []func(workload.Options) workload.Workload{NewBT, NewSP} {
		w := mk(workload.Options{Scale: 4096, Iters: 2})
		a := w.(*adi)
		before := a.Checksum()
		w.Run(trace.Null{})
		after := a.Checksum()
		if math.IsNaN(after) || math.IsInf(after, 0) {
			t.Fatalf("%s: solution diverged to %g", w.Name(), after)
		}
		if before == after {
			t.Fatalf("%s: solver did not update the solution", w.Name())
		}
	}
}

// TestBTAndSPDiffer verifies the pentadiagonal variant emits more traffic
// than the tridiagonal one for identical grids (the t-2 coupling loads).
func TestBTAndSPDiffer(t *testing.T) {
	bt := &adi{name: "bt", g: newGrid(10, 10), iters: 1, penta: false}
	sp := &adi{name: "sp", g: newGrid(10, 10), iters: 1, penta: true}
	var cb, cs trace.Counter
	bt.Run(&cb)
	sp.Run(&cs)
	if cs.Loads <= cb.Loads {
		t.Fatalf("SP loads (%d) should exceed BT loads (%d)", cs.Loads, cb.Loads)
	}
	if cs.Stores != cb.Stores {
		t.Fatalf("store counts should match: %d vs %d", cs.Stores, cb.Stores)
	}
}

// TestCGTracedMatchesPure verifies the traced CG performs the same
// arithmetic as the pure sparse.CG solver.
func TestCGTracedMatchesPure(t *testing.T) {
	w := NewCG(workload.Options{Scale: 4096, Iters: 4})
	c := w.(*cg)
	w.Run(trace.Null{})
	traced := c.Result()

	// Reproduce with the pure solver: same matrix, b = ones, x0 = 0,
	// same iteration cap. sparse.CG stops on tolerance; use tolerance 0
	// to force the same iteration count.
	b := make([]float64, c.m.N)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, c.m.N)
	pure := sparse.CG(c.m, b, x, 4, 0)
	if traced.Iterations != pure.Iterations {
		t.Fatalf("iterations: traced %d, pure %d", traced.Iterations, pure.Iterations)
	}
	if math.Abs(traced.Residual-pure.Residual) > 1e-9*(1+math.Abs(pure.Residual)) {
		t.Fatalf("residuals: traced %g, pure %g", traced.Residual, pure.Residual)
	}
}

// TestGridSizing verifies footprint-driven grid sizing.
func TestGridSizing(t *testing.T) {
	if n := gridForFootprint(120 * 1000); n != int(math.Cbrt(1000)) {
		t.Errorf("gridForFootprint(120k) = %d", n)
	}
	if n := gridForFootprint(1); n != 8 {
		t.Errorf("minimum grid = %d, want 8", n)
	}
}

// TestStridePattern verifies the dimension sweeps touch memory with the
// expected strides: the z sweep is contiguous, the x sweep strides by n².
func TestStridePattern(t *testing.T) {
	g := newGrid(8, 8)
	if g.lineIdx(0, 3, 4, 5) != g.idx(5, 3, 4) {
		t.Error("x-sweep indexing wrong")
	}
	if g.lineIdx(1, 3, 4, 5) != g.idx(3, 5, 4) {
		t.Error("y-sweep indexing wrong")
	}
	if g.lineIdx(2, 3, 4, 5)-g.lineIdx(2, 3, 4, 4) != 1 {
		t.Error("z-sweep must be unit-stride in cells")
	}
	if g.lineIdx(0, 3, 4, 5)-g.lineIdx(0, 3, 4, 4) != 8*8 {
		t.Error("x-sweep must stride by n² cells")
	}
}
