package npb

import (
	"time"

	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// lu is the NPB LU benchmark: an SSOR (symmetric successive
// over-relaxation) solver. Unlike BT/SP's independent line solves, LU's
// lower- and upper-triangular sweeps carry a dependence along all three
// grid dimensions, so cells are processed in wavefront (hyperplane) order:
// all cells with i+j+k = d before any cell with i+j+k = d+1. The resulting
// reference stream walks diagonal planes of the grid — strides that differ
// qualitatively from BT/SP's line sweeps, which is why the paper's Table 4
// lists LU separately.
//
// The paper's Table 4 prints "LU, class C, 0.8GB"; its text discusses SP at
// that slot. This repository ships both: SP is in the default Table 4 suite
// (following the text), and LU is available by name for the extended suite.
type lu struct {
	g     *grid
	iters int
}

// NewLU builds the LU workload (class C: 0.8GB/core footprint per Table 4).
func NewLU(opts workload.Options) workload.Workload {
	scale := opts.Scale
	if scale == 0 {
		scale = 64
	}
	footprint := scaledFootprint(0.8, scale)
	n := gridForFootprint(footprint)
	return &lu{
		g:     newGrid(n, n),
		iters: iters(opts, 1),
	}
}

// Name implements workload.Workload.
func (l *lu) Name() string { return "LU" }

// Suite implements workload.Workload.
func (l *lu) Suite() string { return "NPB" }

// Footprint implements workload.Workload.
func (l *lu) Footprint() uint64 { return l.g.footprint() }

// RefTime implements workload.Workload. Table 4 leaves LU's time cell
// blank; class C LU runs in the same ballpark as the other NPB entries.
func (l *lu) RefTime() time.Duration { return 42 * time.Second }

// Regions implements workload.Workload.
func (l *lu) Regions() []workload.Region { return l.g.regions() }

// Checksum exposes the solution checksum for determinism tests.
func (l *lu) Checksum() float64 { return l.g.checksum() }

// Run executes SSOR iterations: rhs evaluation, a lower-triangular wavefront
// sweep, an upper-triangular wavefront sweep, and the solution update.
func (l *lu) Run(sink trace.Sink) {
	mem := workload.NewMem(sink)
	defer mem.Flush()
	const omega = 1.2
	g := l.g
	n := g.n
	for it := 0; it < l.iters; it++ {
		l.computeRHS(mem)
		// Lower sweep: wavefronts of increasing i+j+k; each cell
		// consumes already-updated (i-1,j,k), (i,j-1,k), (i,j,k-1).
		for d := 0; d <= 3*(n-1); d++ {
			l.wavefront(mem, d, false, omega)
		}
		// Upper sweep: decreasing wavefronts consuming (i+1,j,k),
		// (i,j+1,k), (i,j,k+1).
		for d := 3 * (n - 1); d >= 0; d-- {
			l.wavefront(mem, d, true, omega)
		}
		l.add(mem)
	}
}

// computeRHS evaluates the SSOR right-hand side (same stencil structure as
// the other NPB solvers).
func (l *lu) computeRHS(mem workload.Mem) {
	g := l.g
	n := g.n
	const nu = 0.04
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				c := g.idx(i, j, k)
				mem.LoadN(cellAddr(g.uRegion, c), vecBytes)
				mem.LoadN(cellAddr(g.forcRegion, c), vecBytes)
				for m := 0; m < comps; m++ {
					u := g.u[c*comps+m]
					acc := -6 * u
					if i > 0 {
						acc += g.u[g.idx(i-1, j, k)*comps+m]
					}
					if i < n-1 {
						acc += g.u[g.idx(i+1, j, k)*comps+m]
					}
					if j > 0 {
						acc += g.u[g.idx(i, j-1, k)*comps+m]
					}
					if j < n-1 {
						acc += g.u[g.idx(i, j+1, k)*comps+m]
					}
					if k > 0 {
						acc += g.u[g.idx(i, j, k-1)*comps+m]
					}
					if k < n-1 {
						acc += g.u[g.idx(i, j, k+1)*comps+m]
					}
					g.rhs[c*comps+m] = g.forcing[c*comps+m] + nu*acc
				}
				// Neighbor vectors were already resident from the
				// center loads of adjacent iterations; charge the
				// two strided planes explicitly.
				if i > 0 {
					mem.LoadN(cellAddr(g.uRegion, g.idx(i-1, j, k)), vecBytes)
				}
				if j > 0 {
					mem.LoadN(cellAddr(g.uRegion, g.idx(i, j-1, k)), vecBytes)
				}
				mem.StoreN(cellAddr(g.rhsRegion, c), vecBytes)
			}
		}
	}
}

// wavefront processes every cell on hyperplane i+j+k = d, consuming the
// triangular neighbors appropriate to the sweep direction.
func (l *lu) wavefront(mem workload.Mem, d int, upper bool, omega float64) {
	g := l.g
	n := g.n
	for i := max(0, d-2*(n-1)); i <= min(n-1, d); i++ {
		rem := d - i
		for j := max(0, rem-(n-1)); j <= min(n-1, rem); j++ {
			k := rem - j
			c := g.idx(i, j, k)
			mem.LoadN(cellAddr(g.rhsRegion, c), vecBytes)
			for m := 0; m < comps; m++ {
				var nb float64
				if !upper {
					if i > 0 {
						nb += g.rhs[g.idx(i-1, j, k)*comps+m]
					}
					if j > 0 {
						nb += g.rhs[g.idx(i, j-1, k)*comps+m]
					}
					if k > 0 {
						nb += g.rhs[g.idx(i, j, k-1)*comps+m]
					}
				} else {
					if i < n-1 {
						nb += g.rhs[g.idx(i+1, j, k)*comps+m]
					}
					if j < n-1 {
						nb += g.rhs[g.idx(i, j+1, k)*comps+m]
					}
					if k < n-1 {
						nb += g.rhs[g.idx(i, j, k+1)*comps+m]
					}
				}
				g.rhs[c*comps+m] = (g.rhs[c*comps+m] + omega*0.1*nb) / (1 + 0.3*omega)
			}
			// The three triangular neighbors are loads from prior
			// wavefronts (strided by 1, n, and n² cells).
			if !upper {
				if i > 0 {
					mem.LoadN(cellAddr(g.rhsRegion, g.idx(i-1, j, k)), vecBytes)
				}
				if j > 0 {
					mem.LoadN(cellAddr(g.rhsRegion, g.idx(i, j-1, k)), vecBytes)
				}
				if k > 0 {
					mem.LoadN(cellAddr(g.rhsRegion, g.idx(i, j, k-1)), vecBytes)
				}
			} else {
				if i < n-1 {
					mem.LoadN(cellAddr(g.rhsRegion, g.idx(i+1, j, k)), vecBytes)
				}
				if j < n-1 {
					mem.LoadN(cellAddr(g.rhsRegion, g.idx(i, j+1, k)), vecBytes)
				}
				if k < n-1 {
					mem.LoadN(cellAddr(g.rhsRegion, g.idx(i, j, k+1)), vecBytes)
				}
			}
			mem.StoreN(cellAddr(g.rhsRegion, c), vecBytes)
		}
	}
}

// add folds the SSOR increment into the solution.
func (l *lu) add(mem workload.Mem) {
	g := l.g
	cells := g.n * g.n * g.n
	for c := 0; c < cells; c++ {
		mem.LoadN(cellAddr(g.uRegion, c), vecBytes)
		mem.LoadN(cellAddr(g.rhsRegion, c), vecBytes)
		for m := 0; m < comps; m++ {
			g.u[c*comps+m] += g.rhs[c*comps+m]
		}
		mem.StoreN(cellAddr(g.uRegion, c), vecBytes)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
