package npb

import (
	"math"
	"time"

	"hybridmem/internal/sparse"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// cg is the NPB CG workload: conjugate-gradient iterations over a randomly
// structured sparse SPD matrix. Its SpMV gathers x through random column
// indices — the "irregular memory access" the paper selects CG for.
type cg struct {
	m     *sparse.CSR
	iters int

	arena   workload.Arena
	rowPtrR workload.Region
	colR    workload.Region
	valR    workload.Region
	xR      workload.Region
	rR      workload.Region
	pR      workload.Region
	qR      workload.Region
	bR      workload.Region

	result sparse.CGResult
}

// cgBytesPerRow estimates CSR plus vector storage per matrix row for
// sizing: row pointer (4) + nnz·(col 4 + val 8) + five float64 vectors (40).
func cgBytesPerRow(nnzPerRow int) uint64 { return 4 + uint64(nnzPerRow)*12 + 5*8 }

// NewCG builds the CG workload: Table 4 gives a 1.5GB/core class-D
// footprint and a 54.8s reference time.
func NewCG(opts workload.Options) workload.Workload {
	scale := opts.Scale
	if scale == 0 {
		scale = 64
	}
	footprint := scaledFootprint(1.5, scale)
	const nnzPerRow = 16
	n := int(footprint / cgBytesPerRow(nnzPerRow))
	if n < 64 {
		n = 64
	}
	c := &cg{
		m:     sparse.RandomSPD(n, nnzPerRow, 0xC61),
		iters: iters(opts, 2),
	}
	nnz := uint64(c.m.NNZ())
	c.rowPtrR = c.arena.Alloc("rowptr", uint64(n+1)*4)
	c.colR = c.arena.Alloc("col", nnz*4)
	c.valR = c.arena.Alloc("val", nnz*8)
	c.xR = c.arena.Alloc("x", uint64(n)*8)
	c.rR = c.arena.Alloc("r", uint64(n)*8)
	c.pR = c.arena.Alloc("p", uint64(n)*8)
	c.qR = c.arena.Alloc("q", uint64(n)*8)
	c.bR = c.arena.Alloc("b", uint64(n)*8)
	return c
}

// Name implements workload.Workload.
func (c *cg) Name() string { return "CG" }

// Suite implements workload.Workload.
func (c *cg) Suite() string { return "NPB" }

// Footprint implements workload.Workload.
func (c *cg) Footprint() uint64 { return c.arena.Footprint() }

// RefTime implements workload.Workload.
func (c *cg) RefTime() time.Duration { return 54800 * time.Millisecond }

// Regions implements workload.Workload.
func (c *cg) Regions() []workload.Region { return c.arena.Regions() }

// Run executes the traced conjugate-gradient solve. The arithmetic mirrors
// sparse.CG exactly; every array access additionally emits its reference.
func (c *cg) Run(sink trace.Sink) {
	mem := workload.NewMem(sink)
	defer mem.Flush()
	m := c.m
	n := m.N
	x := make([]float64, n)
	b := make([]float64, n)
	r := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)
	for i := range b {
		b[i] = 1
		mem.Store8(c.bR.Idx(uint64(i), 8))
		mem.Store8(c.xR.Idx(uint64(i), 8))
	}

	// r = b - A·x with x = 0: a full traced SpMV plus vector ops.
	c.spmv(mem, q, x, c.xR)
	for i := 0; i < n; i++ {
		mem.Load8(c.bR.Idx(uint64(i), 8))
		mem.Load8(c.qR.Idx(uint64(i), 8))
		r[i] = b[i] - q[i]
		p[i] = r[i]
		mem.Store8(c.rR.Idx(uint64(i), 8))
		mem.Store8(c.pR.Idx(uint64(i), 8))
	}
	rho := c.dot(mem, r, c.rR, r, c.rR)

	for it := 0; it < c.iters && math.Sqrt(rho) > 1e-12; it++ {
		c.spmv(mem, q, p, c.pR)
		pq := c.dot(mem, p, c.pR, q, c.qR)
		alpha := rho / pq
		c.axpy(mem, alpha, p, c.pR, x, c.xR)
		c.axpy(mem, -alpha, q, c.qR, r, c.rR)
		rhoNew := c.dot(mem, r, c.rR, r, c.rR)
		beta := rhoNew / rho
		for i := 0; i < n; i++ {
			mem.Load8(c.rR.Idx(uint64(i), 8))
			mem.Load8(c.pR.Idx(uint64(i), 8))
			p[i] = r[i] + beta*p[i]
			mem.Store8(c.pR.Idx(uint64(i), 8))
		}
		rho = rhoNew
		c.result = sparse.CGResult{Iterations: it + 1, Residual: math.Sqrt(rho)}
	}
}

// spmv computes y = A·v with traced accesses: row pointers, column indices,
// values, the gathered source vector (resident in srcR), and the result
// store into qR.
func (c *cg) spmv(mem workload.Mem, y, v []float64, srcR workload.Region) {
	m := c.m
	mem.Load4(c.rowPtrR.Idx(0, 4))
	for i := 0; i < m.N; i++ {
		mem.Load4(c.rowPtrR.Idx(uint64(i)+1, 4))
		var sum float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			mem.Load4(c.colR.Idx(uint64(k), 4))
			mem.Load8(c.valR.Idx(uint64(k), 8))
			col := m.Col[k]
			mem.Load8(srcR.Idx(uint64(col), 8))
			sum += m.Val[k] * v[col]
		}
		y[i] = sum
		mem.Store8(c.qR.Idx(uint64(i), 8))
	}
}

// dot computes a traced inner product of two vectors living in the given
// regions.
func (c *cg) dot(mem workload.Mem, a []float64, aR workload.Region, b []float64, bR workload.Region) float64 {
	var s float64
	for i := range a {
		mem.Load8(aR.Idx(uint64(i), 8))
		mem.Load8(bR.Idx(uint64(i), 8))
		s += a[i] * b[i]
	}
	return s
}

// axpy computes y += alpha·x, traced.
func (c *cg) axpy(mem workload.Mem, alpha float64, x []float64, xR workload.Region, y []float64, yR workload.Region) {
	for i := range x {
		mem.Load8(xR.Idx(uint64(i), 8))
		mem.Load8(yR.Idx(uint64(i), 8))
		y[i] += alpha * x[i]
		mem.Store8(yR.Idx(uint64(i), 8))
	}
}

// Result returns the last solve's iteration count and residual.
func (c *cg) Result() sparse.CGResult { return c.result }
