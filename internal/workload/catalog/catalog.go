// Package catalog assembles the paper's Table 4 workload suite.
//
// It lives apart from package workload so that individual workload packages
// can depend on workload without an import cycle.
package catalog

import (
	"fmt"

	"hybridmem/internal/workload"
	"hybridmem/internal/workload/amg"
	"hybridmem/internal/workload/graph"
	"hybridmem/internal/workload/hashbench"
	"hybridmem/internal/workload/npb"
	"hybridmem/internal/workload/stream"
	"hybridmem/internal/workload/velvet"
)

// Names lists the Table 4 workloads in the paper's order (the paper's text
// uses SP in the slot its table prints as LU; LU itself is available via
// ExtendedNames).
var Names = []string{"BT", "SP", "Graph500", "Hashing", "AMG2013", "CG", "Velvet"}

// ExtendedNames adds the workloads beyond the default Table 4 suite: the
// LU solver the paper's table prints, and the STREAM calibration
// microbenchmark.
var ExtendedNames = append(append([]string(nil), Names...), "LU", "STREAM")

// constructors maps names to factories.
var constructors = map[string]func(workload.Options) workload.Workload{
	"BT":       npb.NewBT,
	"SP":       npb.NewSP,
	"LU":       npb.NewLU,
	"STREAM":   func(o workload.Options) workload.Workload { return stream.New(o) },
	"CG":       npb.NewCG,
	"Graph500": func(o workload.Options) workload.Workload { return graph.New(o) },
	"Hashing":  func(o workload.Options) workload.Workload { return hashbench.New(o) },
	"AMG2013":  func(o workload.Options) workload.Workload { return amg.New(o) },
	"Velvet":   func(o workload.Options) workload.Workload { return velvet.New(o) },
}

// New builds one workload by name.
func New(name string, opts workload.Options) (workload.Workload, error) {
	ctor, ok := constructors[name]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown workload %q (known: %v)", name, Names)
	}
	return ctor(opts), nil
}

// All builds the full Table 4 suite.
func All(opts workload.Options) []workload.Workload {
	out := make([]workload.Workload, 0, len(Names))
	for _, n := range Names {
		w, err := New(n, opts)
		if err != nil {
			panic(err) // unreachable: Names and constructors are in sync
		}
		out = append(out, w)
	}
	return out
}
