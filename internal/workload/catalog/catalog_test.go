package catalog

import (
	"testing"

	"hybridmem/internal/workload"
)

func TestNamesMatchConstructors(t *testing.T) {
	if len(Names) != 7 {
		t.Fatalf("Table 4 suite has %d workloads, want 7", len(Names))
	}
	for _, n := range Names {
		w, err := New(n, workload.Options{Scale: 4096})
		if err != nil {
			t.Fatalf("New(%s): %v", n, err)
		}
		if w.Name() != n {
			t.Errorf("New(%s).Name() = %s", n, w.Name())
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := New("LINPACK", workload.Options{}); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestAllBuildsFullSuite(t *testing.T) {
	ws := All(workload.Options{Scale: 4096})
	if len(ws) != len(Names) {
		t.Fatalf("All built %d workloads", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.Name()] {
			t.Fatalf("duplicate workload %s", w.Name())
		}
		seen[w.Name()] = true
		if w.Footprint() == 0 {
			t.Errorf("%s has zero footprint", w.Name())
		}
	}
}

// TestSuiteComposition pins the paper's suite composition: 3 NPB kernels, 3
// CORAL benchmarks, 1 application.
func TestSuiteComposition(t *testing.T) {
	counts := map[string]int{}
	for _, w := range All(workload.Options{Scale: 4096}) {
		counts[w.Suite()]++
	}
	if counts["NPB"] != 3 || counts["CORAL"] != 3 || counts["Application"] != 1 {
		t.Fatalf("suite composition = %v", counts)
	}
}
