// Package velvet implements the Velvet workload: de-novo short-read genome
// assembly via a de Bruijn graph (Zerbino & Birney). The reproduction
// performs the two memory-dominant phases of the assembler: (1) scanning
// packed reads and inserting every k-mer into a hashed node table —
// sequential streaming input combined with random, write-heavy table
// updates — and (2) a graph walk that follows successor k-mers through the
// table to count unbranched chains, a pointer-chasing pass.
package velvet

import (
	"math/rand/v2"
	"time"

	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// K is the k-mer length (Velvet's default hash length ballpark; must be
// ≤ 31 to fit a 2-bit-packed k-mer in a uint64).
const K = 31

// nodeBytes is the size of one de Bruijn node: packed k-mer (8), coverage
// count (4), edge bitmask (4), and two link fields (16).
const nodeBytes = 32

// coverage is the sequencing coverage: how many times each genome base is
// read on average.
const coverage = 4

// fill is the target table load factor.
const fill = 0.6

// motifLen is the length in bases of one repeat motif. Real genomes are
// highly repetitive; reads are modelled as motifs sampled from a pool with
// a skewed distribution, so high-coverage k-mers re-touch their de Bruijn
// nodes frequently (hot nodes), as in real assembly runs.
const motifLen = 512

// Workload is the Velvet workload.
type Workload struct {
	genomeLen uint64 // bases per pass
	poolBases uint64 // distinct motif bases (approx. distinct k-mers)
	slots     uint64 // table capacity, power of two
	seed      uint64

	arena  workload.Arena
	readsR workload.Region
	tableR workload.Region

	// distinct and chains record the last Run's table occupancy and
	// chain count, for determinism tests.
	distinct uint64
	chains   uint64
}

// New builds the workload. Table 4: 4GB/core footprint, 116.5s reference
// time.
func New(opts workload.Options) *Workload {
	scale := opts.Scale
	if scale == 0 {
		scale = 64
	}
	footprint := uint64(4) << 30 / scale
	slots := uint64(1)
	for slots*2*nodeBytes <= footprint*9/10 {
		slots *= 2
	}
	w := &Workload{
		slots:     slots,
		poolBases: uint64(float64(slots)*fill) / motifLen * motifLen,
		seed:      0x7e17e7,
	}
	w.genomeLen = w.poolBases
	readsBytes := (w.genomeLen*coverage + 3) / 4 // 2 bits per base
	w.readsR = w.arena.Alloc("reads", readsBytes)
	w.tableR = w.arena.Alloc("nodes", slots*nodeBytes)
	return w
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "Velvet" }

// Suite implements workload.Workload.
func (w *Workload) Suite() string { return "Application" }

// Footprint implements workload.Workload.
func (w *Workload) Footprint() uint64 { return w.arena.Footprint() }

// RefTime implements workload.Workload.
func (w *Workload) RefTime() time.Duration { return 116500 * time.Millisecond }

// Regions implements workload.Workload.
func (w *Workload) Regions() []workload.Region { return w.arena.Regions() }

// Distinct returns the number of distinct k-mers inserted by the last Run.
func (w *Workload) Distinct() uint64 { return w.distinct }

// Chains returns the number of unbranched chains found by the last Run.
func (w *Workload) Chains() uint64 { return w.chains }

// mix is the table hash.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Run executes both assembler phases with traced references.
func (w *Workload) Run(sink trace.Sink) {
	mem := workload.NewMem(sink)
	defer mem.Flush()
	mask := w.slots - 1
	kmerMask := uint64(1)<<(2*K) - 1

	// The motif pool: deterministic random bases. Reads are sampled from
	// it with a quadratic skew, so a minority of motifs supplies the
	// majority of the coverage — the hot repeats of a real genome.
	rng := rand.New(rand.NewPCG(w.seed, 0x9e3779b97f4a7c15))
	pool := make([]uint8, w.poolBases)
	for i := range pool {
		pool[i] = uint8(rng.Uint64() & 3)
	}
	numMotifs := w.poolBases / motifLen

	table := make([]uint64, w.slots) // packed k-mer per slot; 0 = empty
	count := make([]uint32, w.slots)
	edges := make([]uint8, w.slots) // outgoing-base bitmask per node
	w.distinct = 0

	// Phase 1: for each of `coverage` read passes, roll k-mers along the
	// sampled reads and insert them. Each pass reads the packed read
	// stream sequentially (one 8-byte load per 32 bases) and updates the
	// table randomly.
	for pass := 0; pass < coverage; pass++ {
		var kmer uint64
		basePos := uint64(pass) * w.genomeLen // offset into reads region
		motif := uint64(0)
		motifBase := uint64(0)
		prevSlot := ^uint64(0)
		for i := uint64(0); i < w.genomeLen; i++ {
			if i%motifLen == 0 {
				// Sample the next motif with quartic skew: a small
				// fraction of motifs supplies most of the coverage.
				u := rng.Float64()
				u *= u
				motif = uint64(u * u * float64(numMotifs))
				if motif >= numMotifs {
					motif = numMotifs - 1
				}
				motifBase = motif * motifLen
			}
			if i%32 == 0 {
				mem.Load8(w.readsR.Addr((basePos + i) / 4 % w.readsR.Size &^ 7))
			}
			kmer = ((kmer << 2) | uint64(pool[motifBase+i%motifLen])) & kmerMask
			if i < K-1 {
				continue
			}
			key := kmer | 1<<63 // never zero
			slot := mix(key) & mask
			for {
				mem.LoadN(w.tableR.Idx(slot, nodeBytes), nodeBytes)
				if table[slot] == 0 {
					table[slot] = key
					count[slot] = 1
					w.distinct++
					mem.StoreN(w.tableR.Idx(slot, nodeBytes), nodeBytes)
					break
				}
				if table[slot] == key {
					count[slot]++
					mem.StoreN(w.tableR.Idx(slot, 4), 4) // coverage field
					break
				}
				slot = (slot + 1) & mask
			}
			// Record the edge from the previous k-mer's node to this
			// base, as Velvet's node structure does. The bitmask is
			// checked first, so the store happens only the first time
			// a transition is seen.
			if i >= K && prevSlot != ^uint64(0) {
				bit := uint8(1) << (kmer & 3)
				if edges[prevSlot]&bit == 0 {
					edges[prevSlot] |= bit
					mem.Store4(w.tableR.Idx(prevSlot, nodeBytes) + 12)
				}
			}
			prevSlot = slot
		}
	}

	// Phase 2: chain walk (Velvet's compaction). Scan the table; a node
	// whose edge bitmask records exactly one outgoing base extends an
	// unbranched chain, and its successor is located with one hash
	// lookup — a pointer chase through the table.
	w.chains = 0
	for slot := uint64(0); slot < w.slots; slot++ {
		mem.LoadN(w.tableR.Idx(slot, nodeBytes), nodeBytes)
		if table[slot] == 0 {
			continue
		}
		e := edges[slot]
		if e == 0 || e&(e-1) != 0 {
			continue // dead end or branch point
		}
		base := uint64(0)
		for e > 1 {
			e >>= 1
			base++
		}
		kmer := table[slot] &^ (1 << 63)
		next := ((kmer << 2) | base) & kmerMask
		key := next | 1<<63
		s := mix(key) & mask
		for probes := 0; probes < 4; probes++ {
			mem.LoadN(w.tableR.Idx(s, nodeBytes), nodeBytes)
			if table[s] == key {
				w.chains++
				mem.StoreN(w.tableR.Idx(slot, 8), 8) // link field update
				break
			}
			if table[s] == 0 {
				break
			}
			s = (s + 1) & mask
		}
	}
}
