package velvet

import (
	"testing"

	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
	"hybridmem/internal/workload/wltest"
)

var testOpts = workload.Options{Scale: 2048}

func TestConformance(t *testing.T) {
	w := New(testOpts)
	wltest.CheckMetadata(t, w, "Application", 4<<30/2048)
	wltest.CheckRefsInRegions(t, w)
	wltest.CheckDeterminism(t, w)
}

func TestAssemblyPopulatesTable(t *testing.T) {
	w := New(testOpts)
	w.Run(trace.Null{})
	if w.Distinct() == 0 {
		t.Fatal("no k-mers inserted")
	}
	if w.Distinct() > w.slots {
		t.Fatalf("distinct %d exceeds table capacity %d", w.Distinct(), w.slots)
	}
	// The motif pool bounds distinct k-mers: every k-mer comes from one
	// of the motifs (plus boundary-spanning k-mers between motifs).
	maxDistinct := w.poolBases + (w.genomeLen/motifLen+1)*coverage*(K-1)
	if w.Distinct() > maxDistinct {
		t.Fatalf("distinct %d exceeds pool-derived bound %d", w.Distinct(), maxDistinct)
	}
	// Load factor should be meaningful but below capacity.
	if float64(w.Distinct()) < 0.1*float64(w.slots) {
		t.Fatalf("table nearly empty: %d of %d slots", w.Distinct(), w.slots)
	}
}

func TestChainsFound(t *testing.T) {
	w := New(testOpts)
	w.Run(trace.Null{})
	if w.Chains() == 0 {
		t.Fatal("no unbranched chains found; de Bruijn graph degenerate")
	}
	if w.Chains() > w.Distinct() {
		t.Fatalf("chains %d exceed nodes %d", w.Chains(), w.Distinct())
	}
}

// TestRepeatStructure verifies the skewed motif sampling: multiple passes
// over repeated motifs mean processed k-mers far exceed distinct k-mers.
func TestRepeatStructure(t *testing.T) {
	w := New(testOpts)
	w.Run(trace.Null{})
	processed := w.genomeLen * coverage
	if float64(w.Distinct()) > 0.6*float64(processed) {
		t.Fatalf("little repetition: %d distinct of %d processed", w.Distinct(), processed)
	}
}

func TestWriteHeavyStream(t *testing.T) {
	w := New(testOpts)
	var c trace.Counter
	w.Run(&c)
	if c.Stores == 0 {
		t.Fatal("assembly must write")
	}
	// Table construction is store-rich: at least 2% of refs.
	if float64(c.Stores) < 0.02*float64(c.Total()) {
		t.Fatalf("store share too low: %d of %d", c.Stores, c.Total())
	}
}
