// Package stream implements a STREAM-style bandwidth microbenchmark
// (McCalpin's Copy/Scale/Add/Triad kernels) as an extended workload. It is
// not part of the paper's Table 4 suite; it exists as a calibration
// instrument: its perfectly sequential, zero-reuse access pattern bounds
// the behaviour of page-organized levels (spatial locality = 1, temporal
// locality = 0), making it the sharpest probe of the page-size knob and of
// the row-buffer model.
package stream

import (
	"time"

	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// Workload is the STREAM workload.
type Workload struct {
	n     int // elements per vector
	iters int

	a, b, c []float64

	arena workload.Arena
	aR    workload.Region
	bR    workload.Region
	cR    workload.Region

	// checksum of the last run, for determinism tests.
	checksum float64
}

// New builds the workload. The footprint target matches the suite's
// mid-size entries (3 vectors; ~1GB at scale 1).
func New(opts workload.Options) *Workload {
	scale := opts.Scale
	if scale == 0 {
		scale = 64
	}
	footprint := uint64(1) << 30 / scale
	n := int(footprint / (3 * 8))
	if n < 1024 {
		n = 1024
	}
	w := &Workload{n: n, iters: 2}
	if opts.Iters > 0 {
		w.iters = opts.Iters
	}
	w.a = make([]float64, n)
	w.b = make([]float64, n)
	w.c = make([]float64, n)
	w.aR = w.arena.Alloc("a", uint64(n)*8)
	w.bR = w.arena.Alloc("b", uint64(n)*8)
	w.cR = w.arena.Alloc("c", uint64(n)*8)
	for i := range w.a {
		w.a[i] = 1
		w.b[i] = 2
	}
	return w
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "STREAM" }

// Suite implements workload.Workload.
func (w *Workload) Suite() string { return "Micro" }

// Footprint implements workload.Workload.
func (w *Workload) Footprint() uint64 { return w.arena.Footprint() }

// RefTime implements workload.Workload (nominal; STREAM is an instrument,
// not a Table 4 entry).
func (w *Workload) RefTime() time.Duration { return 10 * time.Second }

// Regions implements workload.Workload.
func (w *Workload) Regions() []workload.Region { return w.arena.Regions() }

// Checksum returns the last run's result checksum.
func (w *Workload) Checksum() float64 { return w.checksum }

// Run executes the four kernels per iteration: Copy (c=a), Scale (b=k*c),
// Add (c=a+b), Triad (a=b+k*c).
func (w *Workload) Run(sink trace.Sink) {
	mem := workload.NewMem(sink)
	defer mem.Flush()
	const k = 3.0
	// Reset state so repeated runs emit identical streams.
	for i := range w.a {
		w.a[i] = 1
		w.b[i] = 2
		w.c[i] = 0
	}
	for it := 0; it < w.iters; it++ {
		for i := 0; i < w.n; i++ { // Copy
			mem.Load8(w.aR.Idx(uint64(i), 8))
			w.c[i] = w.a[i]
			mem.Store8(w.cR.Idx(uint64(i), 8))
		}
		for i := 0; i < w.n; i++ { // Scale
			mem.Load8(w.cR.Idx(uint64(i), 8))
			w.b[i] = k * w.c[i]
			mem.Store8(w.bR.Idx(uint64(i), 8))
		}
		for i := 0; i < w.n; i++ { // Add
			mem.Load8(w.aR.Idx(uint64(i), 8))
			mem.Load8(w.bR.Idx(uint64(i), 8))
			w.c[i] = w.a[i] + w.b[i]
			mem.Store8(w.cR.Idx(uint64(i), 8))
		}
		for i := 0; i < w.n; i++ { // Triad
			mem.Load8(w.bR.Idx(uint64(i), 8))
			mem.Load8(w.cR.Idx(uint64(i), 8))
			w.a[i] = w.b[i] + k*w.c[i]
			mem.Store8(w.aR.Idx(uint64(i), 8))
		}
	}
	var s float64
	for i := 0; i < w.n; i += 97 {
		s += w.a[i]
	}
	w.checksum = s
}
