package stream

import (
	"testing"

	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
	"hybridmem/internal/workload/wltest"
)

var testOpts = workload.Options{Scale: 2048}

func TestConformance(t *testing.T) {
	w := New(testOpts)
	wltest.CheckMetadata(t, w, "Micro", 1<<30/2048)
	wltest.CheckRefsInRegions(t, w)
	wltest.CheckDeterminism(t, w)
}

func TestKernelArithmetic(t *testing.T) {
	w := New(workload.Options{Scale: 8192, Iters: 1})
	w.Run(trace.Null{})
	// After one iteration: c = a+b = 1+3 = 4... trace: copy c=1;
	// scale b=3; add c=1+3=4; triad a=3+3*4=15.
	if w.a[0] != 15 || w.b[0] != 3 || w.c[0] != 4 {
		t.Fatalf("kernel results a=%g b=%g c=%g, want 15/3/4", w.a[0], w.b[0], w.c[0])
	}
	if w.Checksum() == 0 {
		t.Fatal("zero checksum")
	}
}

func TestRefCount(t *testing.T) {
	w := New(workload.Options{Scale: 8192, Iters: 1})
	var c trace.Counter
	w.Run(&c)
	// Per element per iteration: copy 1L+1S, scale 1L+1S, add 2L+1S,
	// triad 2L+1S = 6 loads, 4 stores.
	n := uint64(w.n)
	if c.Loads != 6*n || c.Stores != 4*n {
		t.Fatalf("loads=%d stores=%d, want %d/%d", c.Loads, c.Stores, 6*n, 4*n)
	}
}

// TestPerfectStreamingLocality: STREAM's L1 hit rate must approach
// 1 - lineSize/elemSize... with 64B lines and 8B elements, 7 of 8 accesses
// per vector position hit.
func TestPerfectStreamingLocality(t *testing.T) {
	w := New(workload.Options{Scale: 8192, Iters: 1})
	// A tiny direct L1 suffices for pure streaming.
	// Use the wltest-free path: count unique 64B lines touched.
	var c trace.Counter
	w.Run(&c)
	lines := 3 * uint64(w.n) * 8 / 64
	if c.Total() < 8*lines/2 {
		t.Fatalf("stream too sparse: %d refs over %d lines", c.Total(), lines)
	}
}
