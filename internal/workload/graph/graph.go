// Package graph implements the CORAL Graph500 workload: breadth-first
// search over an undirected Kronecker graph (Table 4 inputs "-s 22 -e 4",
// i.e. edge factor 4), the paper's representative of graph-algorithm
// performance with essentially random pointer-chasing access.
package graph

import (
	"time"

	"hybridmem/internal/kron"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// Workload is the Graph500 BFS workload.
type Workload struct {
	g     *kron.Graph
	roots []int64
	// visitedTotal records the vertices reached across all roots of the
	// last Run, for determinism checks.
	visitedTotal int64

	arena   workload.Arena
	xadjR   workload.Region
	adjR    workload.Region
	parentR workload.Region
	queueR  workload.Region
}

// edgeFactor follows Table 4's "-e 4".
const edgeFactor = 4

// bytesPerVertex estimates CSR plus BFS state per vertex: xadj (8) +
// 2·edgeFactor adjacency int32s (32) + parent (8) + queue slot (8).
const bytesPerVertex = 8 + 2*edgeFactor*4 + 8 + 8

// New builds the workload. Table 4: 4GB/core footprint, 157.0s reference
// time. The Kronecker scale is chosen as the largest power of two of
// vertices fitting the scaled footprint.
func New(opts workload.Options) *Workload {
	scale := opts.Scale
	if scale == 0 {
		scale = 64
	}
	footprint := uint64(4) << 30 / scale
	kscale := 10
	for (uint64(1)<<(kscale+1))*bytesPerVertex <= footprint {
		kscale++
	}
	g := kron.Generate(kscale, edgeFactor, 0x6500)

	w := &Workload{g: g}
	n := uint64(g.N)
	w.xadjR = w.arena.Alloc("xadj", (n+1)*8)
	w.adjR = w.arena.Alloc("adj", uint64(len(g.Adj))*4)
	w.parentR = w.arena.Alloc("parent", n*8)
	w.queueR = w.arena.Alloc("queue", n*8)

	// Deterministic root selection: spread roots over the vertex space,
	// skipping isolated vertices (as the Graph500 spec requires).
	nRoots := 1
	if opts.Iters > 0 {
		nRoots = opts.Iters
	}
	for i := 0; len(w.roots) < nRoots && i < 64*nRoots; i++ {
		v := (int64(i)*2654435761 + 12345) % g.N
		if v < 0 {
			v += g.N
		}
		if g.Degree(v) > 0 {
			w.roots = append(w.roots, v)
		}
	}
	if len(w.roots) == 0 {
		w.roots = []int64{0}
	}
	return w
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "Graph500" }

// Suite implements workload.Workload.
func (w *Workload) Suite() string { return "CORAL" }

// Footprint implements workload.Workload.
func (w *Workload) Footprint() uint64 { return w.arena.Footprint() }

// RefTime implements workload.Workload.
func (w *Workload) RefTime() time.Duration { return 157 * time.Second }

// Regions implements workload.Workload.
func (w *Workload) Regions() []workload.Region { return w.arena.Regions() }

// Graph exposes the underlying Kronecker graph for tests.
func (w *Workload) Graph() *kron.Graph { return w.g }

// VisitedTotal returns the vertices reached across all roots of the last
// Run.
func (w *Workload) VisitedTotal() int64 { return w.visitedTotal }

// Run performs a traced BFS from each root: the canonical top-down
// level-synchronous queue algorithm, emitting a reference for every parent
// check/update, adjacency fetch, and queue operation.
func (w *Workload) Run(sink trace.Sink) {
	mem := workload.NewMem(sink)
	defer mem.Flush()
	g := w.g
	parent := make([]int64, g.N)
	queue := make([]int64, 0, g.N)
	w.visitedTotal = 0

	for _, root := range w.roots {
		for i := range parent {
			parent[i] = -1
			mem.Store8(w.parentR.Idx(uint64(i), 8))
		}
		queue = queue[:0]
		parent[root] = root
		mem.Store8(w.parentR.Idx(uint64(root), 8))
		queue = append(queue, root)
		mem.Store8(w.queueR.Idx(0, 8))
		visited := int64(1)

		for head := 0; head < len(queue); head++ {
			u := queue[head]
			mem.Load8(w.queueR.Idx(uint64(head), 8))
			mem.Load8(w.xadjR.Idx(uint64(u), 8))
			mem.Load8(w.xadjR.Idx(uint64(u)+1, 8))
			for k := g.XAdj[u]; k < g.XAdj[u+1]; k++ {
				mem.Load4(w.adjR.Idx(uint64(k), 4))
				v := int64(g.Adj[k])
				mem.Load8(w.parentR.Idx(uint64(v), 8))
				if parent[v] < 0 {
					parent[v] = u
					mem.Store8(w.parentR.Idx(uint64(v), 8))
					mem.Store8(w.queueR.Idx(uint64(len(queue)), 8))
					queue = append(queue, v)
					visited++
				}
			}
		}
		w.visitedTotal += visited
	}
}
