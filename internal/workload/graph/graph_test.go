package graph

import (
	"testing"

	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
	"hybridmem/internal/workload/wltest"
)

var testOpts = workload.Options{Scale: 2048}

func TestConformance(t *testing.T) {
	w := New(testOpts)
	wltest.CheckMetadata(t, w, "CORAL", 4<<30/2048)
	wltest.CheckRefsInRegions(t, w)
	wltest.CheckDeterminism(t, w)
}

// TestTracedBFSMatchesPureBFS verifies the traced kernel visits exactly the
// vertices the pure kron.BFS visits from the same roots.
func TestTracedBFSMatchesPureBFS(t *testing.T) {
	w := New(testOpts)
	w.Run(trace.Null{})
	var want int64
	for _, root := range w.roots {
		_, visited := w.Graph().BFS(root)
		want += visited
	}
	if got := w.VisitedTotal(); got != want {
		t.Fatalf("traced BFS visited %d, pure BFS %d", got, want)
	}
	if want < 2 {
		t.Fatalf("degenerate test: only %d vertices visited", want)
	}
}

func TestRootsHaveEdges(t *testing.T) {
	w := New(testOpts)
	if len(w.roots) == 0 {
		t.Fatal("no roots selected")
	}
	for _, r := range w.roots {
		if w.Graph().Degree(r) == 0 {
			t.Fatalf("root %d is isolated", r)
		}
	}
}

func TestItersControlsRoots(t *testing.T) {
	w := New(workload.Options{Scale: 4096, Iters: 3})
	if len(w.roots) != 3 {
		t.Fatalf("got %d roots, want 3", len(w.roots))
	}
}

// TestGraphSizedToFootprint verifies the Kronecker scale selection: the
// next power of two would overshoot the footprint budget.
func TestGraphSizedToFootprint(t *testing.T) {
	w := New(testOpts)
	footprint := uint64(4) << 30 / 2048
	n := uint64(w.Graph().N)
	if n*bytesPerVertex > footprint {
		t.Fatalf("graph of %d vertices overshoots %d-byte budget", n, footprint)
	}
	if 4*n*bytesPerVertex < footprint {
		t.Fatalf("graph of %d vertices far undershoots %d-byte budget", n, footprint)
	}
}
