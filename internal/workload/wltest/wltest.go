// Package wltest provides shared conformance checks for workload
// implementations: determinism, address-space containment, and metadata
// sanity. Every workload package's tests run these.
package wltest

import (
	"sort"
	"testing"

	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// CheckDeterminism runs the workload twice and verifies both runs emit
// byte-identical reference streams (compared via aggregate counters and a
// sampled prefix).
func CheckDeterminism(t *testing.T, w workload.Workload) {
	t.Helper()
	var c1, c2 trace.Counter
	var prefix1, prefix2 []trace.Ref
	const sample = 4096
	w.Run(trace.NewTee(&c1, trace.SinkFunc(func(r trace.Ref) {
		if len(prefix1) < sample {
			prefix1 = append(prefix1, r)
		}
	})))
	w.Run(trace.NewTee(&c2, trace.SinkFunc(func(r trace.Ref) {
		if len(prefix2) < sample {
			prefix2 = append(prefix2, r)
		}
	})))
	if c1 != c2 {
		t.Fatalf("%s: non-deterministic counters: %+v vs %+v", w.Name(), c1, c2)
	}
	for i := range prefix1 {
		if prefix1[i] != prefix2[i] {
			t.Fatalf("%s: ref %d differs between runs: %+v vs %+v", w.Name(), i, prefix1[i], prefix2[i])
		}
	}
	if c1.Total() == 0 {
		t.Fatalf("%s: emitted no references", w.Name())
	}
}

// CheckRefsInRegions verifies that every emitted reference starts inside
// one of the workload's declared regions — the invariant the NDM oracle's
// address-space partitioning depends on.
func CheckRefsInRegions(t *testing.T, w workload.Workload) {
	t.Helper()
	regs := w.Regions()
	if len(regs) == 0 {
		t.Fatalf("%s: no regions declared", w.Name())
	}
	sorted := append([]workload.Region(nil), regs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	contains := func(addr uint64) bool {
		lo, hi := 0, len(sorted)
		for lo < hi {
			mid := (lo + hi) / 2
			switch {
			case addr < sorted[mid].Base:
				hi = mid
			case addr >= sorted[mid].End():
				lo = mid + 1
			default:
				return true
			}
		}
		return false
	}
	var bad, total uint64
	var firstBad trace.Ref
	w.Run(trace.SinkFunc(func(r trace.Ref) {
		total++
		if !contains(r.Addr) {
			if bad == 0 {
				firstBad = r
			}
			bad++
		}
	}))
	if bad > 0 {
		t.Fatalf("%s: %d/%d refs outside declared regions (first: %+v; regions: %v)",
			w.Name(), bad, total, firstBad, regs)
	}
}

// CheckMetadata verifies name/suite labels, a positive footprint within 2x
// of the scaled Table 4 target, and a positive reference time.
func CheckMetadata(t *testing.T, w workload.Workload, wantSuite string, targetFootprint uint64) {
	t.Helper()
	if w.Name() == "" || w.Suite() != wantSuite {
		t.Errorf("metadata: name=%q suite=%q (want suite %q)", w.Name(), w.Suite(), wantSuite)
	}
	fp := w.Footprint()
	if fp == 0 {
		t.Fatal("zero footprint")
	}
	if targetFootprint > 0 && (fp > 2*targetFootprint || fp < targetFootprint/4) {
		t.Errorf("footprint %d far from target %d", fp, targetFootprint)
	}
	if w.RefTime() <= 0 {
		t.Error("non-positive reference time")
	}
	// Footprint must equal the sum of region sizes.
	var sum uint64
	for _, r := range w.Regions() {
		sum += r.Size
	}
	if sum != fp {
		t.Errorf("footprint %d != region sum %d", fp, sum)
	}
}
