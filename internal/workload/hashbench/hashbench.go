// Package hashbench implements the CORAL Hash workload: a data-centric
// integer-hashing benchmark (Table 4 inputs "-m 30M -n 50K") representative
// of memory-intensive genomics pipelines.
//
// The kernel builds an open-addressing hash table (sized like CORAL's
// 30M-entry table, roughly one eighth of the workload footprint — small
// enough that the paper's 512MB-class DRAM caches can hold it) and streams
// a large key array through insert and lookup phases. Lookups are skewed
// toward a hot key subset, as a k-mer counting pass over real reads would
// be. The benchmark is integer-compute dense — hashing dominates between
// memory touches — which is why the paper groups it with the workloads
// whose static energy dwarfs their dynamic energy.
package hashbench

import (
	"math/rand/v2"
	"time"

	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
)

// slotBytes is the size of one table slot: 8-byte key plus 8-byte value.
const slotBytes = 16

// fill is the target load factor after the insert phase.
const fill = 0.5

// Workload is the hashing workload.
type Workload struct {
	capacity uint64 // slots, power of two
	inserts  uint64
	lookups  uint64
	seed     uint64

	arena  workload.Arena
	tableR workload.Region
	keysR  workload.Region
	keyLen uint64 // number of keys in the key stream

	// found counts successful lookups in the last Run.
	found uint64
}

// New builds the workload. Table 4: 4GB/core footprint, 389.6s reference
// time. The table takes ~1/8 of the footprint (as CORAL's 480MB table does
// of its 4GB); the streamed key array takes the rest.
func New(opts workload.Options) *Workload {
	scale := opts.Scale
	if scale == 0 {
		scale = 64
	}
	footprint := uint64(4) << 30 / scale
	capacity := uint64(1)
	for capacity*2*slotBytes <= footprint/8 {
		capacity *= 2
	}
	inserts := uint64(float64(capacity) * fill)
	lookups := 2 * inserts
	if opts.Iters > 0 {
		// Iters scales the lookup phase (the "-n" knob).
		lookups = inserts * uint64(opts.Iters)
	}
	w := &Workload{
		capacity: capacity,
		inserts:  inserts,
		lookups:  lookups,
		seed:     0x4a5b,
	}
	w.tableR = w.arena.Alloc("table", capacity*slotBytes)
	keysBytes := footprint - w.arena.Footprint()
	w.keyLen = keysBytes / 8
	if w.keyLen < inserts {
		w.keyLen = inserts
	}
	w.keysR = w.arena.Alloc("keys", w.keyLen*8)
	return w
}

// Name implements workload.Workload.
func (w *Workload) Name() string { return "Hashing" }

// Suite implements workload.Workload.
func (w *Workload) Suite() string { return "CORAL" }

// Footprint implements workload.Workload.
func (w *Workload) Footprint() uint64 { return w.arena.Footprint() }

// RefTime implements workload.Workload.
func (w *Workload) RefTime() time.Duration { return 389600 * time.Millisecond }

// Regions implements workload.Workload.
func (w *Workload) Regions() []workload.Region { return w.arena.Regions() }

// Found returns the number of successful lookups in the last Run.
func (w *Workload) Found() uint64 { return w.found }

// mix is a 64-bit finalizer (splitmix64-style) used as the hash function.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Run executes the key-stream generation, insert phase, and lookup phase,
// with linear probing. Every key-stream read, probe load, and slot store is
// traced.
func (w *Workload) Run(sink trace.Sink) {
	mem := workload.NewMem(sink)
	defer mem.Flush()
	mask := w.capacity - 1
	table := make([]uint64, w.capacity) // keys; 0 = empty
	rng := rand.New(rand.NewPCG(w.seed, 0x2545F4914F6CDD1D))

	// Generate the key stream: a sequential write pass over the large
	// array (reading input data in the real benchmark).
	keys := make([]uint64, w.keyLen)
	for i := range keys {
		k := rng.Uint64() | 1 // never zero
		keys[i] = k
		mem.Store8(w.keysR.Idx(uint64(i), 8))
	}

	// Insert phase: the first `inserts` keys populate the table.
	for i := uint64(0); i < w.inserts; i++ {
		mem.Load8(w.keysR.Idx(i, 8))
		k := keys[i]
		slot := mix(k) & mask
		for {
			mem.LoadN(w.tableR.Idx(slot, slotBytes), slotBytes)
			if table[slot] == 0 {
				table[slot] = k
				mem.StoreN(w.tableR.Idx(slot, slotBytes), slotBytes)
				break
			}
			if table[slot] == k {
				break
			}
			slot = (slot + 1) & mask
		}
	}

	// Lookup phase: a skewed mix, as a genomics k-mer counting pass
	// would see — most queries re-touch a hot subset of keys (high-
	// coverage k-mers), a minority probe cold keys or miss entirely.
	w.found = 0
	hot := w.inserts / 16
	if hot == 0 {
		hot = 1
	}
	for i := uint64(0); i < w.lookups; i++ {
		var k uint64
		switch {
		case i%8 < 6: // 75%: hot keys
			idx := (i * 2654435761) % hot
			mem.Load8(w.keysR.Idx(idx, 8))
			k = keys[idx]
		case i%8 == 6: // 12.5%: cold existing keys
			idx := (i * 2654435761) % w.inserts
			mem.Load8(w.keysR.Idx(idx, 8))
			k = keys[idx]
		default: // 12.5%: absent keys
			k = rng.Uint64() | 1
		}
		slot := mix(k) & mask
		for {
			mem.LoadN(w.tableR.Idx(slot, slotBytes), slotBytes)
			if table[slot] == k {
				w.found++
				break
			}
			if table[slot] == 0 {
				break
			}
			slot = (slot + 1) & mask
		}
	}
}
