package hashbench

import (
	"testing"

	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
	"hybridmem/internal/workload/wltest"
)

var testOpts = workload.Options{Scale: 2048}

func TestConformance(t *testing.T) {
	w := New(testOpts)
	wltest.CheckMetadata(t, w, "CORAL", 4<<30/2048)
	wltest.CheckRefsInRegions(t, w)
	wltest.CheckDeterminism(t, w)
}

// TestLookupsFindInsertedKeys: hot and cold lookups of existing keys must
// succeed; with 6/8 hot + 1/8 cold existing + 1/8 absent, at least 7/8 of
// lookups (minus hash-collision noise on absent keys) are found.
func TestLookupsFindInsertedKeys(t *testing.T) {
	w := New(testOpts)
	w.Run(trace.Null{})
	found := w.Found()
	minWant := w.lookups * 7 / 8
	if found < minWant {
		t.Fatalf("found %d of %d lookups, want at least %d", found, w.lookups, minWant)
	}
	if found > w.lookups {
		t.Fatalf("found %d > lookups %d", found, w.lookups)
	}
}

func TestTableFitsCapacityBudget(t *testing.T) {
	w := New(testOpts)
	footprint := uint64(4) << 30 / 2048
	// CORAL's table is ~1/8 of the footprint; ours must respect that.
	if w.tableR.Size > footprint/4 {
		t.Fatalf("table %d bytes exceeds 1/4 of footprint %d", w.tableR.Size, footprint)
	}
	if w.capacity&(w.capacity-1) != 0 {
		t.Fatalf("capacity %d not a power of two", w.capacity)
	}
}

func TestItersScalesLookups(t *testing.T) {
	w1 := New(workload.Options{Scale: 4096, Iters: 1})
	w4 := New(workload.Options{Scale: 4096, Iters: 4})
	if w4.lookups != 4*w1.lookups {
		t.Fatalf("lookups: iters=4 gives %d, iters=1 gives %d", w4.lookups, w1.lookups)
	}
}

func TestMixAvalanche(t *testing.T) {
	// Adjacent inputs must map to very different outputs.
	a, b := mix(1), mix(2)
	if a == b {
		t.Fatal("mix(1) == mix(2)")
	}
	diff := a ^ b
	// Population count of the difference should be near 32.
	n := 0
	for diff != 0 {
		n += int(diff & 1)
		diff >>= 1
	}
	if n < 16 || n > 48 {
		t.Fatalf("mix avalanche poor: %d differing bits", n)
	}
	if mix(0x1234) != mix(0x1234) {
		t.Fatal("mix not deterministic")
	}
}
