package workload

import (
	"errors"
	"testing"
	"testing/quick"

	"hybridmem/internal/trace"
)

func TestArenaAllocations(t *testing.T) {
	var a Arena
	r1 := a.Alloc("one", 100)
	r2 := a.Alloc("two", 5000)
	if r1.Base == 0 {
		t.Fatal("address 0 must never be allocated")
	}
	if r1.Base%4096 != 0 || r2.Base%4096 != 0 {
		t.Fatal("regions must be page-aligned")
	}
	if r1.End() > r2.Base {
		t.Fatal("regions overlap")
	}
	if r2.Base-r1.End() < 4096 {
		t.Fatal("missing guard page between regions")
	}
	if got := a.Footprint(); got != 5100 {
		t.Fatalf("Footprint = %d, want 5100", got)
	}
	regs := a.Regions()
	if len(regs) != 2 || regs[0].Name != "one" || regs[1].Name != "two" {
		t.Fatalf("Regions() = %v", regs)
	}
}

func TestArenaZeroSize(t *testing.T) {
	var a Arena
	r := a.Alloc("zero", 0)
	if r.Size != 1 {
		t.Fatalf("zero-size alloc got size %d, want 1", r.Size)
	}
}

// TestArenaDisjointness is a property test: any allocation sequence yields
// pairwise-disjoint regions in increasing address order.
func TestArenaDisjointness(t *testing.T) {
	f := func(sizes []uint16) bool {
		var a Arena
		var regs []Region
		for i, s := range sizes {
			if i > 64 {
				break
			}
			regs = append(regs, a.Alloc("r", uint64(s)+1))
		}
		for i := 1; i < len(regs); i++ {
			if regs[i-1].End() > regs[i].Base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionAddr(t *testing.T) {
	r := Region{Name: "x", Base: 8192, Size: 64}
	if got := r.Addr(10); got != 8202 {
		t.Fatalf("Addr(10) = %d", got)
	}
	if got := r.Idx(3, 8); got != 8192+24 {
		t.Fatalf("Idx(3,8) = %d", got)
	}
	if !r.Contains(8192) || r.Contains(8192+64) {
		t.Fatal("Contains boundary wrong")
	}
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestRegionAddrPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-region Addr should panic")
		}
	}()
	r := Region{Name: "x", Base: 0x1000, Size: 64}
	r.Addr(64)
}

func TestMemEmission(t *testing.T) {
	var refs []trace.Ref
	m := NewMem(trace.SinkFunc(func(r trace.Ref) { refs = append(refs, r) }))
	m.Load8(100)
	m.Store8(200)
	m.Load4(300)
	m.Store4(400)
	m.Load1(500)
	m.Store1(600)
	m.LoadN(700, 40)
	m.StoreN(800, 24)
	m.Flush()
	wantSizes := []uint32{8, 8, 4, 4, 1, 1, 40, 24}
	wantKinds := []trace.Kind{trace.Load, trace.Store, trace.Load, trace.Store, trace.Load, trace.Store, trace.Load, trace.Store}
	if len(refs) != len(wantSizes) {
		t.Fatalf("emitted %d refs", len(refs))
	}
	for i, r := range refs {
		if r.Size != wantSizes[i] || r.Kind != wantKinds[i] {
			t.Errorf("ref %d = %+v", i, r)
		}
	}
	if refs[0].Addr != 100 || refs[7].Addr != 800 {
		t.Error("addresses wrong")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.scaleOrDefault() != 64 {
		t.Errorf("default scale = %d", o.scaleOrDefault())
	}
	if o.itersOrDefault(5) != 5 {
		t.Errorf("default iters = %d", o.itersOrDefault(5))
	}
	o = Options{Scale: 8, Iters: 3}
	if o.scaleOrDefault() != 8 || o.itersOrDefault(5) != 3 {
		t.Error("explicit options not honored")
	}
}

// TestAddrPanicsTyped verifies the kernel-facing contract: an out-of-bounds
// region offset panics with a *RegionError that the evaluation boundary
// recovers into a typed error instead of killing the process.
func TestAddrPanicsTyped(t *testing.T) {
	var a Arena
	r := a.Alloc("nodes", 100)
	recovered := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = v.(error)
			}
		}()
		r.Addr(100) // one past the end
		return nil
	}()
	var re *RegionError
	if !errors.As(recovered, &re) {
		t.Fatalf("got %T (%v), want *RegionError", recovered, recovered)
	}
	if re.Region != "nodes" || re.Offset != 100 || re.Size != 100 {
		t.Fatalf("RegionError = %+v", re)
	}
	if re.Error() == "" {
		t.Fatal("empty Error()")
	}
}
