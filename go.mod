module hybridmem

go 1.22
