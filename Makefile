GO ?= go

.PHONY: all build vet test bench repro sweep clean race bench-json bench-compare doccheck catalogcheck chaos

all: build vet test doccheck catalogcheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full test log, as recorded in test_output.txt.
test-log:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench:
	$(GO) test -bench=. -benchmem ./...

bench-log:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Machine-readable benchmark summary (BENCH_<short-sha>.json, or
# BENCH_worktree.json outside a git checkout).
bench-json:
	$(GO) test -bench=. -benchmem ./... | \
		$(GO) run ./cmd/benchjson -o BENCH_$$(git rev-parse --short HEAD 2>/dev/null || echo worktree).json

# Regression gate against the committed baseline: re-run the gated fan-out
# replay and cache hot-loop benchmarks and fail on a >15% ns/op regression.
# Same check CI runs; refresh BENCH_baseline.json when a slowdown is intended.
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkFanoutReplay' . > /tmp/hybridmem_gate_bench.txt
	$(GO) test -run '^$$' -bench 'BenchmarkCacheAccess' ./internal/cache/ >> /tmp/hybridmem_gate_bench.txt
	$(GO) run ./cmd/benchjson -o /tmp/hybridmem_BENCH_gate.json < /tmp/hybridmem_gate_bench.txt
	$(GO) run ./cmd/benchjson -compare -threshold 15 -match 'FanoutReplay|CacheAccess' \
		BENCH_baseline.json /tmp/hybridmem_BENCH_gate.json

# Race-detector pass over the full test suite (~2 minutes).
race:
	$(GO) test -race ./...

# Chaos harness: drive CHAOS_REQUESTS mixed requests (poisoned designs that
# panic, injected transient faults, NVM device-fault specs) through the
# serving path under the race detector. Asserts zero process exits, breaker
# containment, bounded uncorrectable rates, and same-seed determinism.
CHAOS_REQUESTS ?= 1000
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/serve -chaos-requests=$(CHAOS_REQUESTS) -v

# Godoc hygiene: every package needs a package comment; the listed
# packages additionally need doc comments on every exported symbol.
doccheck:
	$(GO) run ./cmd/doccheck -exported internal/serve,internal/exp,internal/obs,internal/design,internal/trace,internal/cache,internal/core,internal/fault,internal/store,internal/tech,internal/admit,internal/reuse,internal/analytic .

# Schema-validate the embedded builtin catalog and every example catalog
# file (hybridmem-catalog/1, see FORMATS.md).
catalogcheck:
	$(GO) run ./cmd/catalogcheck
	$(GO) run ./cmd/catalogcheck examples/catalogs/*.json

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
repro:
	$(GO) run ./cmd/paperrepro -all

# Full design-space sweep as CSV.
sweep:
	$(GO) run ./cmd/sweep -design all > sweep.csv

clean:
	$(GO) clean ./...
	rm -f sweep.csv
