GO ?= go

.PHONY: all build vet test bench repro sweep clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full test log, as recorded in test_output.txt.
test-log:
	$(GO) test ./... 2>&1 | tee test_output.txt

bench:
	$(GO) test -bench=. -benchmem ./...

bench-log:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
repro:
	$(GO) run ./cmd/paperrepro -all

# Full design-space sweep as CSV.
sweep:
	$(GO) run ./cmd/sweep -design all > sweep.csv

clean:
	$(GO) clean ./...
	rm -f sweep.csv
