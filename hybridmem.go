// Package hybridmem is a simulation framework for evaluating emerging
// memory technologies in hybrid memory hierarchies, reproducing "Evaluation
// of emerging memory technologies for HPC, data intensive applications"
// (Suresh, Cicotti, Carrington; CLUSTER 2014).
//
// The framework couples:
//
//   - instrumented HPC/data-intensive workload kernels (NPB BT/SP/CG, CORAL
//     Graph500/Hashing/AMG2013, and Velvet-style genome assembly) that
//     stream their memory references online;
//   - a multi-level set-associative cache/memory hierarchy simulator with
//     load/store differentiation, write-back dirty tracking at sector
//     granularity, and page-organized levels;
//   - technology models for DRAM, PCM, STT-RAM, FeRAM, eDRAM, and HMC
//     (Table 1 of the paper);
//   - analytic performance (AMAT) and energy (dynamic + static, EDP)
//     models; and
//   - an experiment harness that regenerates every table and figure of the
//     paper's evaluation over the 4LC, NMM, 4LCNVM, and NDM designs.
//
// # Quick start
//
//	suite, err := hybridmem.NewSuite(hybridmem.Config{
//	        Workloads: []string{"CG"},
//	})
//	if err != nil { ... }
//	rows, err := suite.NMM(hybridmem.PCM) // Figure 1/2 data
//
// See the examples directory for complete programs, and DESIGN.md /
// EXPERIMENTS.md for the system inventory and reproduction notes.
package hybridmem

import (
	"hybridmem/internal/cache"
	"hybridmem/internal/core"
	"hybridmem/internal/design"
	"hybridmem/internal/exp"
	"hybridmem/internal/model"
	"hybridmem/internal/ndm"
	"hybridmem/internal/report"
	"hybridmem/internal/tech"
	"hybridmem/internal/trace"
	"hybridmem/internal/workload"
	"hybridmem/internal/workload/catalog"
)

// Tech describes one memory technology: latencies, per-bit energies, and
// static power. See Table 1 of the paper.
type Tech = tech.Tech

// Predefined technologies (Table 1).
var (
	DRAM   = tech.DRAM
	PCM    = tech.PCM
	STTRAM = tech.STTRAM
	FeRAM  = tech.FeRAM
	EDRAM  = tech.EDRAM
	HMC    = tech.HMC
)

// TechByName looks up a technology by case-insensitive name.
func TechByName(name string) (Tech, error) { return tech.ByName(name) }

// NVMs returns the paper's non-volatile main-memory candidates.
func NVMs() []Tech { return tech.NVMs() }

// LLCs returns the paper's fast volatile last-level-cache candidates.
func LLCs() []Tech { return tech.LLCs() }

// Config sizes an experiment run; the zero value reproduces the paper's
// defaults at the default co-scaling factor.
type Config = exp.Config

// Suite is a profiled workload set ready to evaluate design points: the
// framework's main entry point.
type Suite = exp.Suite

// NewSuite profiles the configured workloads through the shared SRAM cache
// prefix and returns a Suite ready to evaluate design points.
func NewSuite(cfg Config) (*Suite, error) { return exp.NewSuite(cfg) }

// Row is one design configuration's outcome across the workload suite.
type Row = exp.Row

// WorkloadProfile is one workload's reusable simulation state: shared
// SRAM-prefix statistics plus the recorded post-L3 boundary stream. Use it
// to evaluate many design points against one expensive workload run.
type WorkloadProfile = exp.WorkloadProfile

// ProfileWorkload simulates one workload through the shared SRAM prefix and
// returns its reusable profile. dilution is the L1-hit dilution factor
// (DefaultDilution recommended; see Config.Dilution).
func ProfileWorkload(w Workload, scale uint64, dilution int) (*WorkloadProfile, error) {
	return exp.ProfileWorkload(w, scale, dilution)
}

// DefaultDilution is the default L1-hit dilution factor.
const DefaultDilution = exp.DefaultDilution

// NDMResult is one workload's NDM oracle exploration.
type NDMResult = exp.NDMResult

// Heatmap is a Figures 9-10 style grid of normalized runtime or energy.
type Heatmap = exp.Heatmap

// Evaluation is the modelled outcome of one workload on one design, with
// both absolute and reference-normalized metrics.
type Evaluation = model.Evaluation

// Profile is the per-level statistics input to the performance and energy
// models.
type Profile = model.Profile

// Workload is one instrumented benchmark kernel.
type Workload = workload.Workload

// WorkloadOptions sizes a workload (footprint co-scaling and iterations).
type WorkloadOptions = workload.Options

// Region is a named span of a workload's simulated address space; custom
// workloads declare their data structures as Regions so placement policies
// (the NDM oracle) can partition over them.
type Region = workload.Region

// AddrRange is a half-open address interval used by partitioned memories.
type AddrRange = core.AddrRange

// WorkloadNames lists the Table 4 benchmark suite.
func WorkloadNames() []string { return append([]string(nil), catalog.Names...) }

// NewWorkload builds one Table 4 workload by name.
func NewWorkload(name string, opts WorkloadOptions) (Workload, error) {
	return catalog.New(name, opts)
}

// Ref is one memory reference; Sink consumes a reference stream. Implement
// Sink (or use Hierarchy) to analyze custom workloads, or implement
// Workload to feed custom kernels into the harness.
type (
	Ref  = trace.Ref
	Sink = trace.Sink
)

// Batch-first streaming: BatchSink consumes references many at a time,
// Stream walks a replayable source in batches, RefSlice adapts a raw []Ref
// to Stream, and Packed is the delta-encoded boundary-store representation
// WorkloadProfile records into. See the internal/trace package comment for
// the pipeline description.
type (
	BatchSink = trace.BatchSink
	Stream    = trace.Stream
	RefSlice  = trace.RefSlice
	Packed    = trace.Packed
)

// Reference kinds.
const (
	Load  = trace.Load
	Store = trace.Store
)

// Hierarchy is the multi-level cache/memory simulator; it implements Sink.
type Hierarchy = core.Hierarchy

// LevelStats is one simulated level's technology, capacity, and statistics.
type LevelStats = core.LevelStats

// Counter is a Sink that counts loads, stores, and bytes.
type Counter = trace.Counter

// Backend describes a design point below the shared SRAM prefix.
type Backend = design.Backend

// Design-space constructors (Section III.A of the paper).
var (
	// ReferenceDesign is the baseline: SRAM caches over DRAM.
	ReferenceDesign = design.Reference
	// FourLC adds an eDRAM/HMC fourth-level cache over DRAM.
	FourLC = design.FourLC
	// NMM places a DRAM cache over NVM main memory.
	NMM = design.NMM
	// FourLCNVM combines an eDRAM/HMC cache with NVM main memory.
	FourLCNVM = design.FourLCNVM
	// NDMDesign partitions the address space between DRAM and NVM.
	NDMDesign = design.NDM
)

// EHConfig and NConfig are rows of the paper's Tables 2 and 3.
type (
	EHConfig = design.EHConfig
	NConfig  = design.NConfig
)

// Configuration tables (Tables 2 and 3).
var (
	EHConfigs = design.EHConfigs
	NConfigs  = design.NConfigs
)

// DefaultScale is the default capacity co-scaling divisor (see DESIGN.md).
const DefaultScale = design.DefaultScale

// CacheConfig configures a single simulated cache level.
type CacheConfig = cache.Config

// CacheStats are per-level reference statistics.
type CacheStats = cache.Stats

// RangeStats and Placement support the NDM oracle partitioning study.
type (
	RangeStats = ndm.RangeStats
	Placement  = ndm.Placement
)

// Table renders results as aligned text or CSV.
type Table = report.Table

// FigureTable formats one figure's rows like the paper's figures.
var FigureTable = report.FigureTable

// HeatmapTable formats a heat map grid.
var HeatmapTable = report.HeatmapTable
