// Benchmarks for the extensions beyond the paper (DESIGN.md section 6 /
// EXPERIMENTS.md "Extensions"): dynamic NDM partitioning, wear leveling,
// the row-buffer timing refinement, reuse-distance profiling, the trace
// codec, and multicore L3 contention.
package hybridmem

import (
	"bytes"
	"fmt"
	"testing"

	"hybridmem/internal/design"
	"hybridmem/internal/exp"
	"hybridmem/internal/multicore"
	"hybridmem/internal/ndm"
	"hybridmem/internal/reuse"
	"hybridmem/internal/tech"
	"hybridmem/internal/trace"
	"hybridmem/internal/wear"
	"hybridmem/internal/workload"
	"hybridmem/internal/workload/catalog"
)

// BenchmarkExtDynamicNDM measures the epoch-based dynamic partitioning
// sweep and reports its outcome next to the static oracle's.
func BenchmarkExtDynamicNDM(b *testing.B) {
	s := suite(b)
	var dyn exp.DynamicNDMRow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dyn, err = s.DynamicNDM(tech.PCM, ndm.DynamicConfig{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	_, static, err := s.NDM(tech.PCM)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(dyn.Avg.NormTime, "dynNormTime")
	b.ReportMetric(static.Avg.NormTime, "oracleNormTime")
	b.ReportMetric(dyn.Avg.NormEnergy, "dynNormEnergy")
}

// BenchmarkExtWearLeveling measures Start-Gap remapping cost and reports
// the wear-imbalance reduction on a hot-line-hammering stream.
func BenchmarkExtWearLeveling(b *testing.B) {
	// A small device (256 frames) so the stream covers several Start-Gap
	// rotations; the scheme levels over full rotations of the device.
	const capacity = 256 * 64
	for _, psi := range []uint64{0, 4} {
		name := "unleveled"
		if psi > 0 {
			name = fmt.Sprintf("startgap-psi%d", psi)
		}
		b.Run(name, func(b *testing.B) {
			var imbalance float64
			for i := 0; i < b.N; i++ {
				m, err := wear.NewMemory("nvm", tech.PCM, capacity, 64, psi)
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 100000; j++ {
					// 90% hot line, 10% spread.
					addr := uint64(0)
					if j%10 == 9 {
						addr = uint64(j) * 64 % capacity
					}
					m.Store(addr, 8)
				}
				imbalance = m.WearStats().Imbalance
			}
			b.ReportMetric(imbalance, "imbalance")
		})
	}
}

// BenchmarkExtRowBuffer compares the flat main-memory timing against the
// open-page row-buffer refinement on a real boundary stream, reporting the
// row hit rate and the AMAT difference.
func BenchmarkExtRowBuffer(b *testing.B) {
	s := suite(b)
	wp := s.Profiles[0]
	flat := design.Reference(wp.Footprint)
	rowbuf := flat.WithRowBuffer()
	b.Run("flat", func(b *testing.B) {
		var amat float64
		for i := 0; i < b.N; i++ {
			ev, err := wp.Evaluate(flat)
			if err != nil {
				b.Fatal(err)
			}
			amat = ev.AMATNanos
		}
		b.ReportMetric(amat, "amatNS")
	})
	b.Run("rowbuffer", func(b *testing.B) {
		var amat float64
		for i := 0; i < b.N; i++ {
			ev, err := wp.Evaluate(rowbuf)
			if err != nil {
				b.Fatal(err)
			}
			amat = ev.AMATNanos
		}
		b.ReportMetric(amat, "amatNS")
	})
}

// BenchmarkExtReuseProfiler measures the Fenwick-based reuse-distance
// profiler over a workload stream and reports the 90% working set.
func BenchmarkExtReuseProfiler(b *testing.B) {
	w, err := catalog.New("CG", workload.Options{Scale: 2048})
	if err != nil {
		b.Fatal(err)
	}
	var ws uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := reuse.New(64)
		if err != nil {
			b.Fatal(err)
		}
		w.Run(p)
		ws = p.Histogram().WorkingSet(0.9)
	}
	b.ReportMetric(float64(ws), "workingSet90lines")
}

// BenchmarkExtTraceCodec measures trace encode and decode throughput.
func BenchmarkExtTraceCodec(b *testing.B) {
	s := suite(b)
	refs := s.Profiles[0].Boundary.Refs()
	b.Run("encode", func(b *testing.B) {
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			w, err := trace.NewWriter(&buf)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range refs {
				w.Access(r)
			}
			if err := w.Flush(); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(buf.Len()))
		}
		b.ReportMetric(float64(len(refs)), "refs")
	})
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range refs {
		w.Access(r)
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := trace.NewReader(bytes.NewReader(encoded))
			if err != nil {
				b.Fatal(err)
			}
			var c trace.Counter
			if _, err := r.CopyTo(&c); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(encoded)))
		}
	})
}

// BenchmarkExtMulticoreContention runs 1 vs 4 cores of the same workload
// over the shared L3 and reports the contended hit rates.
func BenchmarkExtMulticoreContention(b *testing.B) {
	mk := func() workload.Workload {
		w, err := catalog.New("CG", workload.Options{Scale: 4096})
		if err != nil {
			b.Fatal(err)
		}
		return w
	}
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("cores%d", n), func(b *testing.B) {
			var hit float64
			for i := 0; i < b.N; i++ {
				ws := make([]workload.Workload, n)
				for j := range ws {
					ws[j] = mk()
				}
				res, err := multicore.Run(multicore.Config{Scale: 64}, ws, nil)
				if err != nil {
					b.Fatal(err)
				}
				hit = res.L3HitRate()
			}
			b.ReportMetric(hit, "l3HitRate")
		})
	}
}

// BenchmarkExtWritePolicy contrasts write-back (the paper's assumption)
// with write-through/no-write-allocate for the NMM DRAM cache, reporting
// the NVM store traffic each policy produces — the quantity PCM's 210
// pJ/bit write energy punishes.
func BenchmarkExtWritePolicy(b *testing.B) {
	s := suite(b)
	wp := s.Profiles[0]
	for _, wt := range []bool{false, true} {
		name := "write-back"
		if wt {
			name = "write-through"
		}
		b.Run(name, func(b *testing.B) {
			var nvmStores uint64
			for i := 0; i < b.N; i++ {
				backend := design.NMM(design.NConfigs[5], tech.PCM, 64, wp.Footprint)
				backend.Caches[0].WriteThrough = wt
				built, err := backend.Build()
				if err != nil {
					b.Fatal(err)
				}
				built.Replay(wp.Boundary)
				snap := built.Snapshot()
				nvmStores = snap[len(snap)-1].Stats.Stores
			}
			b.ReportMetric(float64(nvmStores), "nvmStores")
		})
	}
}

// BenchmarkExtPrefetcher measures a next-line prefetcher on the NMM DRAM
// cache: hit-rate gain versus extra NVM read traffic.
func BenchmarkExtPrefetcher(b *testing.B) {
	s := suite(b)
	wp := s.Profiles[0]
	for _, depth := range []int{0, 1, 4} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			var hitRate float64
			var nvmLoads uint64
			for i := 0; i < b.N; i++ {
				backend := design.NMM(design.NConfigs[8], tech.PCM, 64, wp.Footprint) // N9: 64B pages
				backend.Caches[0].PrefetchNext = depth
				built, err := backend.Build()
				if err != nil {
					b.Fatal(err)
				}
				built.Replay(wp.Boundary)
				hitRate = built.CacheStats()[0].HitRate()
				snap := built.Snapshot()
				nvmLoads = snap[len(snap)-1].Stats.Loads
			}
			b.ReportMetric(hitRate, "dram$HitRate")
			b.ReportMetric(float64(nvmLoads), "nvmLoads")
		})
	}
}
