package hybridmem_test

import (
	"testing"

	"hybridmem"
)

// tinyConfig keeps the public-API test fast.
var tinyConfig = hybridmem.Config{
	Scale:         64,
	WorkloadScale: 4096,
	Workloads:     []string{"CG"},
}

// TestPublicAPIEndToEnd exercises the full public surface: suite
// construction, design-point evaluation, figure sweeps, NDM oracle, heat
// maps, and reporting.
func TestPublicAPIEndToEnd(t *testing.T) {
	suite, err := hybridmem.NewSuite(tinyConfig)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Profiles) != 1 || suite.Profiles[0].Name != "CG" {
		t.Fatalf("profiles = %v", suite.Profiles)
	}

	rows, err := suite.NMM(hybridmem.PCM)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(hybridmem.NConfigs) {
		t.Fatalf("NMM rows = %d", len(rows))
	}

	profile := suite.Profiles[0]
	ev, err := profile.Evaluate(hybridmem.FourLC(hybridmem.EHConfigs[0], hybridmem.EDRAM, tinyConfig.Scale, profile.Footprint))
	if err != nil {
		t.Fatal(err)
	}
	if ev.NormTime <= 0 || ev.NormEnergy <= 0 {
		t.Fatalf("evaluation = %+v", ev)
	}

	if _, _, err := suite.NDM(hybridmem.STTRAM); err != nil {
		t.Fatal(err)
	}

	hm, err := suite.LatencyHeatmap([]float64{1, 2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	tab := hybridmem.HeatmapTable(hm)
	if len(tab.Rows) != 2 {
		t.Fatalf("heatmap table rows = %d", len(tab.Rows))
	}
}

func TestPublicTechAccess(t *testing.T) {
	pcm, err := hybridmem.TechByName("PCM")
	if err != nil {
		t.Fatal(err)
	}
	if pcm.WriteNS != 100 {
		t.Fatalf("PCM write latency = %g", pcm.WriteNS)
	}
	if got := len(hybridmem.NVMs()); got != 3 {
		t.Fatalf("NVMs = %d", got)
	}
	if got := len(hybridmem.LLCs()); got != 2 {
		t.Fatalf("LLCs = %d", got)
	}
	if got := len(hybridmem.WorkloadNames()); got != 7 {
		t.Fatalf("workloads = %d", got)
	}
}

// TestCustomWorkloadSink verifies the public trace types support custom
// analysis: a user-provided Sink counting a workload's stream.
func TestCustomWorkloadSink(t *testing.T) {
	w, err := hybridmem.NewWorkload("Hashing", hybridmem.WorkloadOptions{Scale: 4096})
	if err != nil {
		t.Fatal(err)
	}
	var c hybridmem.Counter
	w.Run(&c)
	if c.Total() == 0 {
		t.Fatal("no references")
	}
	if c.Stores == 0 {
		t.Fatal("hash workload must store")
	}
}

func TestCustomTechnology(t *testing.T) {
	custom := hybridmem.Tech{
		Name: "Custom", ReadNS: 12, WriteNS: 24,
		ReadPJPerBit: 5, WritePJPerBit: 15, NonVolatile: true,
	}
	if err := custom.Validate(); err != nil {
		t.Fatal(err)
	}
	w, err := hybridmem.NewWorkload("CG", hybridmem.WorkloadOptions{Scale: 4096})
	if err != nil {
		t.Fatal(err)
	}
	profile, err := hybridmem.ProfileWorkload(w, 64, hybridmem.DefaultDilution)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := profile.Evaluate(hybridmem.NMM(hybridmem.NConfigs[5], custom, 64, profile.Footprint))
	if err != nil {
		t.Fatal(err)
	}
	if ev.NormTime <= 0 {
		t.Fatalf("evaluation = %+v", ev)
	}
}
